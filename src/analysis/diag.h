// Structured diagnostics for the model-conformance analyzer.
//
// A Diagnostic is one finding of the analyzer: a stable rule id (the full
// catalogue, with the paper result grounding each rule, is documented in
// docs/ANALYSIS.md), a severity, and enough context to reproduce the
// finding — the process, the register, the step index within the schedule,
// and a fingerprint of the schedule itself. Diagnostics flow through
// pluggable sinks: TextSink for humans, JsonSink for machines (`bsr lint
// --json`, CI annotations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sched.h"

namespace bsr::analysis {

enum class Severity {
  Warning,  ///< Suspicious but conforming (dead register, unused width).
  Error,    ///< A model or paper-claim violation; fails `bsr lint`.
};

[[nodiscard]] std::string to_string(Severity s);

/// Which analyzer tier produced a report: the dynamic explorer, the static
/// IR checker, the symbolic prover (static checks plus all-params claim
/// verification), both explorer+static (cross-validated), the static
/// interference pass (op-footprint independence over the protocol IR), or
/// the step-complexity engine (symbolic per-process step bounds proved
/// against the step claims and cross-validated against observed steps).
enum class Mode {
  Dynamic,
  Static,
  Symbolic,
  Both,
  Interference,
  Steps,
};

[[nodiscard]] std::string to_string(Mode m);

/// One analyzer finding. Fields that do not apply are left at their
/// defaults: aggregate findings (claim checks, dead registers) have no
/// step/fingerprint; step-level findings on channels have reg = -1.
struct Diagnostic {
  std::string rule;            ///< Stable rule id, e.g. "swmr-ownership".
  Severity severity = Severity::Error;
  std::string protocol;        ///< Registry name of the analyzed protocol.
  sim::Pid pid = -1;           ///< Offending process (-1: not process-local).
  int reg = -1;                ///< Register index (-1: not register-local).
  std::string reg_name;        ///< Declared register name, if reg != -1.
  long step = -1;              ///< Step index within the execution (-1: n/a).
  /// Fingerprint of the schedule exhibiting the finding ("" for aggregate
  /// findings). For sampled protocols this is "seed:<n>".
  std::string fingerprint;
  std::string message;
};

/// FNV-1a fingerprint of a schedule, for cross-referencing diagnostics with
/// replayable executions (stable across runs and engines).
[[nodiscard]] std::string schedule_fingerprint(
    const std::vector<sim::Choice>& schedule);

/// Per-register facts a report carries: the declaration plus the tier's
/// derived (static) or observed (dynamic) usage. The cross-validator
/// compares a static and a dynamic row field by field.
struct RegisterAudit {
  int reg = -1;            ///< Index into the protocol's register table.
  std::string name;
  int writer = -1;
  int declared_bits = -1;  ///< -1 = unbounded.
  bool write_once = false;
  bool allows_bottom = false;
  int max_bits = 0;        ///< Bits used/derivable; -1 = no finite bound.
  long max_writes = 0;     ///< Writes per execution; -1 = no finite bound.
  bool read = false;       ///< Read on some execution / some abstract path.
  /// Rendered symbolic width of the register's writes (static tier only;
  /// "" when no write was stated symbolically).
  std::string sym_bits;
  /// Symbolic-prover verdict for this register's width obligations
  /// (`--mode=symbolic` only): "all params" when proved for every
  /// assumption-satisfying ParamEnv, "n <= N" when only the small-n cutoff
  /// sweep closed it, "refuted" when a witness environment violates it,
  /// "" when the register carries no obligation (or the prover did not run).
  std::string verified;
};

/// One cross-process op pair from the static interference analysis
/// (`--mode=interference`): the two op sites (rendered labels), the
/// verdict, and the rule that justified it (see
/// analysis/static/interference.h for the soundness argument).
/// Cap on stored InterferencePair detail rows per report. Stack-based
/// protocols flatten to hundreds of op sites (hundreds of thousands of
/// pairs); the totals always cover the full relation, only the rendered
/// detail is truncated.
inline constexpr std::size_t kMaxInterferenceDetail = 2048;

struct InterferencePair {
  std::string a;              ///< Label of the first op site, e.g. "p0 write 'r'".
  std::string b;              ///< Label of the second op site.
  bool independent = false;   ///< Proven to commute in every state.
  std::string reason;         ///< Human-readable justification of the verdict.
};

/// One process row of the step-complexity tier (`--mode=steps`): the
/// symbolic bound the static engine derived, its value at the spec's
/// ParamEnv, the max steps the dynamic tier actually observed on any
/// schedule, and the prover's verdict on "bound ≤ step claim".
struct StepAudit {
  sim::Pid pid = -1;
  std::string bound;     ///< Rendered symbolic bound; "∞" when !finite.
  bool finite = true;
  bool serve = false;    ///< Declared serve pump (exempt ∞).
  long bound_eval = -1;  ///< Bound at the spec's ParamEnv (-1: no bound).
  long observed = -1;    ///< Dynamic max steps seen (-1: not measured).
  /// Prover verdict for this process's obligation: "all params", "n <= N",
  /// "refuted", or "" (no finite claim or no finite bound).
  std::string verified;
};

/// Everything the analyzer learned about one protocol.
struct ProtocolReport {
  std::string name;
  std::string claim_source;      ///< Paper grounding of the width claim.
  Mode mode = Mode::Dynamic;     ///< Which tier produced this report.
  bool sampled = false;          ///< True: seeded sampling, not exhaustive.
  long executions = 0;           ///< Explored leaves / sampled runs (0: static).
  int max_bounded_bits_used = 0; ///< Max over every explored execution.
  int claimed_register_bits = 0; ///< The paper's per-register budget.
  /// Rendered symbolic claim ("" when the claim is a plain constant). The
  /// budget actually enforced is this expression evaluated at the spec's
  /// ParamEnv, which must agree with claimed_register_bits.
  std::string claimed_bits_expr;
  /// Aggregate prover verdict over every register obligation
  /// (`--mode=symbolic` only): "all params", "n <= N", or "refuted";
  /// "" when the prover did not run on this report.
  std::string claim_verified;
  std::vector<RegisterAudit> registers;
  std::vector<Diagnostic> diagnostics;
  /// Interference tier (`--mode=interference`) only: totals over every
  /// cross-process op pair, plus the pair verdicts themselves (capped at
  /// kMaxInterferenceDetail entries; `interference_truncated` says whether
  /// the cap hit — the totals always cover the full relation).
  long interference_ops = 0;          ///< Op sites across all processes.
  long interference_pairs = 0;        ///< Cross-process pairs classified.
  long interference_independent = 0;  ///< Pairs proven independent.
  bool interference_truncated = false;
  std::vector<InterferencePair> interference;
  /// Step tier (`--mode=steps`) only: the declared per-process step claim
  /// ("" when the spec makes no finite step claim), its paper grounding,
  /// the aggregate prover verdict over every process obligation, and one
  /// audit row per process.
  std::string step_claim_expr;
  std::string step_claim_source;
  std::string step_verified;
  std::vector<StepAudit> steps;
  /// Dynamic tier only: max atomic steps each process (indexed by pid) was
  /// observed taking on any explored/sampled schedule. Not serialized —
  /// the step tier merges it into its StepAudit rows.
  std::vector<long> observed_steps;

  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
};

/// Consumer of analyzer output. `report` is called once per analyzed
/// protocol; `close` once at the end with the totals.
class DiagnosticSink {
 public:
  virtual ~DiagnosticSink() = default;
  virtual void report(const ProtocolReport& r) = 0;
  virtual void close(int errors, int warnings) = 0;
};

/// Human-readable sink: one header line per protocol, one line per finding.
class TextSink : public DiagnosticSink {
 public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void report(const ProtocolReport& r) override;
  void close(int errors, int warnings) override;

 private:
  std::ostream& os_;
};

/// Machine-readable sink: buffers every report and emits one JSON document
/// `{"protocols": [...], "errors": N, "warnings": N}` on close.
class JsonSink : public DiagnosticSink {
 public:
  explicit JsonSink(std::ostream& os) : os_(os) {}
  void report(const ProtocolReport& r) override;
  void close(int errors, int warnings) override;

 private:
  std::ostream& os_;
  std::vector<ProtocolReport> reports_;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through, so UTF-8
/// register names such as ⊥ stay readable).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace bsr::analysis
