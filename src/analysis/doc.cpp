#include "analysis/doc.h"

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/claims.h"
#include "analysis/static/checker.h"
#include "analysis/static/ir.h"
#include "analysis/static/steps.h"
#include "serve/modes.h"

namespace bsr::analysis {

namespace {

/// "n = 2, k = 3" — only the parameters the spec actually sets.
std::string params_line(const ir::ParamEnv& e) {
  std::ostringstream os;
  bool first = true;
  const auto emit = [&os, &first](const char* key, long v) {
    if (v == 0) return;
    if (!first) os << ", ";
    first = false;
    os << key << " = " << v;
  };
  emit("n", e.n);
  emit("k", e.k);
  emit("Δ", e.delta);
  emit("t", e.t);
  emit("b", e.b);
  return os.str();
}

std::string width_cell(int bits) {
  return bits == ir::kUnboundedWidth ? "unbounded" : std::to_string(bits);
}

std::string bits_word(int n) {
  return std::to_string(n) + (n == 1 ? " bit" : " bits");
}

/// The claimed per-register budget, with its symbolic form when the claims
/// table states one (e.g. "2 (= ceil_log2(k))").
std::string claim_cell(const WidthClaim& c) {
  std::string s = bits_word(c.max_register_bits);
  if (c.symbolic_bits.defined()) {
    s += " (= ";
    s += c.symbolic_bits.render();
    s += ")";
  }
  return s;
}

/// The symbolic prover's verdict on the spec's width claims ("all params",
/// "n <= N", or "refuted" — the docs/PROTOCOLS.md *verified* column).
std::string verified_cell(const ProtocolSpec& s) {
  if (!s.describe) return "per-env only";
  return verify_claims(s).status;
}

/// The step tier's summary column: the declared per-process step claim and
/// the prover's verdict on the derived bounds ("—" when the spec makes no
/// finite step claim — serve-pump stacks and the termination canary).
std::string step_bound_cell(const ProtocolSpec& s) {
  if (!s.describe) return "per-env only";
  if (!s.step_claim.max_steps.defined()) return "—";
  std::string cell = "≤ " + s.step_claim.max_steps.render();
  const std::string status = analyze_steps(s).step_verified;
  if (!status.empty()) cell += " (" + status + ")";
  return cell;
}

std::string audit_cell(const ProtocolSpec& s) {
  if (s.demo) return "linter self-test (demo; must fail)";
  if (s.sample_runner) {
    return std::to_string(s.sample_seeds) +
           " seeded sample runs + static IR audit";
  }
  return "exhaustive exploration + static IR audit";
}

/// The lint rules that can fire on this spec, derived from its IR features
/// (dynamic id / static mirror where both tiers implement the rule; see
/// docs/ANALYSIS.md for the full catalogue).
std::vector<std::string> applicable_rules(const ProtocolSpec& s,
                                          const ir::ProtocolIR& p) {
  bool bounded = false;
  bool once = false;
  bool bottom = false;
  for (const ir::RegisterDecl& r : p.registers) {
    if (r.width_bits != ir::kUnboundedWidth) bounded = true;
    if (r.write_once) once = true;
    if (r.allows_bottom) bottom = true;
  }
  std::vector<std::string> rules;
  rules.emplace_back("`claim-width` / `static-width`");
  rules.emplace_back("`step-atomicity`");
  if (!p.registers.empty()) {
    rules.emplace_back("`swmr-ownership` / `static-ownership`");
    rules.emplace_back("`dead-register` / `static-dead-register`");
    rules.emplace_back("`width-unused`");
  }
  if (bounded) rules.emplace_back("`width-overflow`");
  if (once) rules.emplace_back("`write-once` / `static-write-once`");
  if (bottom) rules.emplace_back("`bottom-escape`");
  if (s.claim.per_process_bits.has_value()) {
    rules.emplace_back("`claim-usage`");
  }
  if (!p.channels.empty()) {
    rules.emplace_back("`topology` / `static-topology`");
    rules.emplace_back("`static-channel-width`");
  }
  return rules;
}

/// Compact per-source topology: "0 → {1, 2}; 1 → {0, 2}".
std::string topology_line(const ir::ProtocolIR& p) {
  if (p.channels.empty()) return "unconstrained (shared memory only)";
  std::ostringstream os;
  int current_src = -1;
  bool first_dst = true;
  for (const ir::ChannelDecl& c : p.channels) {
    if (c.src != current_src) {
      if (current_src != -1) os << "}; ";
      current_src = c.src;
      first_dst = true;
      os << c.src << " → {";
    }
    if (!first_dst) os << ", ";
    first_dst = false;
    os << c.dst;
    if (c.width_bits != ir::kUnboundedWidth) os << " (" << c.width_bits << "b)";
  }
  os << "}";
  return os.str();
}

/// Total atomic steps across all processes per complete execution — the
/// paper's step-complexity figure for the whole protocol.
ir::Count total_steps(const ir::ProtocolSummary& sum) {
  ir::Count total;
  for (const ir::Count& s : sum.steps) total = total.seq(s);
  return total;
}

/// Per-process step and round counts, derived by the same abstract
/// interpretation that audits the widths (ir::summarize_full).
void write_step_table(std::ostream& os, const ir::ProtocolIR& p,
                      const ir::ProtocolSummary& sum,
                      const ir::StepReport& bounds) {
  os << "| process | steps/exec | step bound | rounds/exec |\n"
     << "|---------|------------|------------|-------------|\n";
  for (std::size_t i = 0; i < p.processes.size(); ++i) {
    const ir::ProcessStepBound& b = bounds.processes[i];
    const std::string bound =
        b.finite ? b.bound.render()
                 : (b.serve ? std::string("∞ (serve)")
                            : std::string("∞ (unproven)"));
    os << "| p" << p.processes[i].pid << " | " << ir::render(sum.steps[i])
       << " | " << bound << " | "
       << (p.max_rounds == ir::kMany ? std::string("—")
                                     : ir::render(sum.rounds[i]))
       << " |\n";
  }
  os << "| **total** | " << ir::render(total_steps(sum)) << " | | |\n";
}

void write_register_table(std::ostream& os, const ir::ProtocolIR& p,
                          const std::vector<ir::RegisterSummary>& sums) {
  if (p.registers.empty()) {
    os << "No shared registers (message passing only).\n";
    return;
  }
  os << "| # | register | owner | declared bits | write-once | ⊥ | "
        "writes/exec | derived value set | symbolic width |\n"
     << "|---|----------|-------|---------------|------------|---|"
        "-------------|-------------------|----------------|\n";
  for (std::size_t i = 0; i < p.registers.size(); ++i) {
    const ir::RegisterDecl& r = p.registers[i];
    const ir::RegisterSummary& s = sums[i];
    os << "| " << i << " | `" << r.name << "` | p" << r.writer << " | "
       << width_cell(r.width_bits) << " | " << (r.write_once ? "yes" : "—")
       << " | " << (r.allows_bottom ? "yes" : "—") << " | "
       << ir::render(s.writes) << " | "
       << (s.written ? ir::render(s.values) : std::string("—")) << " | "
       << (s.sym.defined() ? "`" + s.sym.render() + "`" : std::string("—"))
       << " |\n";
  }
}

void write_structure(std::ostream& os, const ir::ProtocolIR& p) {
  os << "```text\n";
  for (const ir::ProcessIR& proc : p.processes) {
    os << "process p" << proc.pid << ":\n";
    for (const ir::Instr& i : proc.body) {
      os << "  " << ir::render(i) << "\n";
    }
  }
  os << "```\n";
}

void write_spec(std::ostream& os, const ProtocolSpec& s) {
  const ir::ProtocolIR p = s.describe();
  const ir::ProtocolSummary sum = ir::summarize_full(p);
  os << "## `" << s.name << "`\n\n" << s.description << ".\n\n";
  os << "- **Paper anchor:** " << s.claim.source << "\n";
  os << "- **Claimed register width:** " << claim_cell(s.claim);
  if (s.claim.per_process_bits.has_value()) {
    os << "; per-process budget " << bits_word(*s.claim.per_process_bits);
  }
  os << "\n";
  os << "- **Claim verification:** " << verified_cell(s)
     << " (symbolic prover; see docs/ANALYSIS.md)\n";
  os << "- **Step claim:** ";
  if (s.step_claim.max_steps.defined()) {
    os << "at most " << s.step_claim.max_steps.render()
       << " steps/process [" << s.step_claim.source << "]";
    const std::string status = analyze_steps(s).step_verified;
    if (!status.empty()) os << ", verified: " << status;
  } else {
    os << "none [" << s.step_claim.source << "]";
  }
  os << "\n";
  const std::string params = params_line(s.params);
  if (!params.empty()) os << "- **Parameters:** " << params << "\n";
  os << "- **Audit:** " << audit_cell(s) << "\n";
  os << "- **Topology:** " << topology_line(p) << "\n";
  os << "- **Round budget:** "
     << (p.max_rounds == ir::kMany
             ? std::string("undeclared (no round structure)")
             : "at most " + std::to_string(p.max_rounds) + " per process")
     << "\n";
  os << "- **Lint rules:** ";
  const std::vector<std::string> rules = applicable_rules(s, p);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) os << ", ";
    os << rules[i];
  }
  os << "\n\n### Step counts\n\n";
  write_step_table(os, p, sum, ir::step_bounds(p));
  os << "\n### Registers\n\n";
  write_register_table(os, p, sum.registers);
  os << "\n### Reflected structure\n\n";
  write_structure(os, p);
  os << "\n";
}

}  // namespace

void write_protocol_reference(std::ostream& os) {
  const std::vector<ProtocolSpec>& specs = builtin_protocols();
  os << "# Protocol reference\n\n"
     << "<!-- Generated by `bsr doc` — do not edit by hand. Regenerate with\n"
     << "     scripts/update_goldens.sh; CI fails when this file is stale. "
        "-->\n\n"
     << "Every entry below is derived from the protocol's executable builder "
        "body\n"
     << "(`src/proto/builder.h`): the same coroutine that runs under "
        "`sim::Sim` is\n"
     << "reflected into the static IR rendered here, so this reference "
        "cannot drift\n"
     << "from the code. Widths are in bits; `[lo, hi]` denotes a value or "
        "trip-count\n"
     << "interval, `∞` an interval with no finite upper bound, and `⊥` the "
        "reserved\n"
     << "bottom code point. The rule catalogue behind the *Lint rules* lines "
        "is\n"
     << "documented in docs/ANALYSIS.md.\n\n";

  os << "| protocol | paper anchor | claimed width | verified | steps/exec "
        "| step bound | audit |\n"
     << "|----------|--------------|---------------|----------|------------"
        "|------------|-------|\n";
  for (const ProtocolSpec& s : specs) {
    const ir::Count steps = total_steps(ir::summarize_full(s.describe()));
    os << "| [`" << s.name << "`](#" << s.name << ") | " << s.claim.source
       << " | " << claim_cell(s.claim) << " | " << verified_cell(s) << " | "
       << ir::render(steps) << " | " << step_bound_cell(s) << " | "
       << audit_cell(s) << " |\n";
  }
  os << "\n";
  for (const ProtocolSpec& s : specs) write_spec(os, s);

  os << "## `bsr serve` request modes\n\n"
     << "The analysis daemon (docs/SERVE.md) answers these request modes; "
        "*cacheable*\n"
     << "modes are served from the IR-keyed result cache on repeat "
        "requests. This\n"
     << "table is rendered from the daemon's own dispatch table "
        "(src/serve/modes.h).\n\n";
  write_serve_modes(os);
}

void write_serve_modes(std::ostream& os) {
  os << "| mode | cacheable | payload | contract |\n"
     << "|------|-----------|---------|----------|\n";
  std::size_t count = 0;
  const serve::ModeInfo* table = serve::dispatch_table(&count);
  for (std::size_t i = 0; i < count; ++i) {
    os << "| `" << table[i].mode << "` | "
       << (table[i].cacheable ? "yes" : "—") << " | " << table[i].payload
       << " | " << table[i].description << " |\n";
  }
}

}  // namespace bsr::analysis
