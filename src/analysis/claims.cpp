#include "analysis/claims.h"

#include <memory>
#include <utility>

#include "core/alg1.h"
#include "core/alg2.h"
#include "core/alg6.h"
#include "core/baseline.h"
#include "core/lemma82.h"
#include "core/packed.h"
#include "core/sec6.h"
#include "core/sec7.h"
#include "sim/sched.h"
#include "tasks/approx.h"
#include "tasks/explicit_task.h"
#include "topo/bmz.h"

namespace bsr::analysis {
namespace {

using sim::Sim;

/// ApproxAgreement(2, m) materialized for the BMZ machinery (Algorithm 2's
/// precomputation input).
tasks::ExplicitTask approx_task(std::uint64_t m) {
  const tasks::ApproxAgreement aa(2, m);
  std::vector<Value> domain;
  for (std::uint64_t v = 0; v <= m; ++v) domain.emplace_back(v);
  return tasks::materialize(aa, domain);
}

ProtocolSpec alg1_spec() {
  ProtocolSpec s;
  s.name = "alg1";
  s.description = "Algorithm 1: 2-process eps-agreement, 1-bit registers";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "Theorem 1.2 / §5.1 (1-bit R_i, 2-bit ⊥/0/1 I_i; 3 bits per "
             "process, §5.2.3)"};
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg1(*sim, /*k=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_alg1(/*k=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec packed_alg1_spec() {
  ProtocolSpec s;
  s.name = "alg1-packed";
  s.description =
      "Algorithm 1 over one packed 3-bit register per process";
  s.claim = {/*max_register_bits=*/3, /*per_process_bits=*/3,
             "§5.2.3 (b1+b2-bit register emulates b1- and b2-bit registers)"};
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_packed_alg1(*sim, /*k=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_packed_alg1(/*k=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec alg2_spec() {
  ProtocolSpec s;
  s.name = "alg2";
  s.description =
      "Algorithm 2: universal 2-process construction, 3-bit coordination";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "Theorem 1.2 / §5.2.3 (3 coordination bits per process; task "
             "inputs through write-once input registers)"};
  const auto task = std::make_shared<tasks::ExplicitTask>(approx_task(2));
  const auto bmz = std::make_shared<topo::Bmz2>(*task);
  const auto plan = std::make_shared<topo::Bmz2Plan>(bmz->plan());
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg2(*sim, *plan, {Value(0), Value(1)});
    return sim;
  };
  s.describe = [plan] {
    return core::describe_alg2(static_cast<std::uint64_t>(plan->L));
  };
  s.explore.max_steps = 500;
  return s;
}

ProtocolSpec lemma82_spec() {
  ProtocolSpec s;
  s.name = "lemma82";
  s.description =
      "Lemma 8.2: IIS eps-agreement from the 1-bit labelling protocol";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/std::nullopt,
             "Lemma 8.2 / §8.1 (1 data bit + ⊥ per iterated register)"};
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_labelling_agreement(*sim, /*rounds=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_labelling_agreement(/*rounds=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec alg6_spec() {
  ProtocolSpec s;
  const core::Alg6Options opts{/*rounds=*/2, /*delta=*/2};
  s.name = "alg6-labelling";
  s.description =
      "Algorithm 6: IS-labelling simulation on two constant-size registers";
  s.claim = {/*max_register_bits=*/core::alg6_register_bits(opts.delta),
             /*per_process_bits=*/core::alg6_register_bits(opts.delta),
             "Theorem 8.1 / §8.2 (⌈log₂(2Δ+1)⌉ + Δ+1 = 6 bits at Δ = 2)"};
  s.factory = [opts] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg6_labelling(*sim, opts);
    return sim;
  };
  s.describe = [opts] { return core::describe_alg6_labelling(opts); };
  s.explore.max_steps = 400;
  return s;
}

ProtocolSpec fast_agreement_spec() {
  ProtocolSpec s;
  const core::Alg6Options opts{/*rounds=*/2, /*delta=*/2};
  s.name = "fast-agreement";
  s.description =
      "Theorem 8.1: fast eps-agreement (Algorithm 6 + value assignment)";
  s.claim = {/*max_register_bits=*/core::alg6_register_bits(opts.delta),
             /*per_process_bits=*/core::alg6_register_bits(opts.delta),
             "Theorem 8.1 (6-bit registers, O(log 1/ε) steps)"};
  const auto plan = std::make_shared<core::FastAgreementPlan>(opts);
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_fast_agreement(*sim, *plan, {0, 1});
    return sim;
  };
  s.describe = [opts] { return core::describe_fast_agreement(opts); };
  s.explore.max_steps = 400;
  return s;
}

ProtocolSpec alg4_spec() {
  ProtocolSpec s;
  s.name = "alg4-agreement";
  s.description =
      "Algorithm 4: IIS universality with 1-bit registers (eps-agreement)";
  s.claim = {/*max_register_bits=*/1, /*per_process_bits=*/std::nullopt,
             "Theorem 1.4 / §7 (every iterated register is 1 bit)"};
  const auto plan = std::make_shared<core::Alg4AgreementPlan>(/*k=*/1);
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg4_agreement(*sim, *plan, {0, 1});
    return sim;
  };
  s.describe = [plan] {
    return core::describe_alg4_agreement(plan->configs().flat.size());
  };
  s.explore.max_steps = 500;
  return s;
}

ProtocolSpec baseline_spec() {
  ProtocolSpec s;
  s.name = "baseline-unbounded";
  s.description =
      "Lemma 2.2 baseline: eps-agreement with unbounded registers";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "Lemma 2.2 (unbounded model: no bounded register may appear)"};
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_unbounded_agreement(*sim, /*rounds=*/2, {0, 1});
    return sim;
  };
  s.describe = [] {
    return core::describe_unbounded_agreement(/*n=*/2, /*rounds=*/2);
  };
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec sec6_spec() {
  ProtocolSpec s;
  const int n = 3;
  const int t = 1;
  s.name = "sec6-stack";
  s.description =
      "Theorem 1.3 register stack: ABD + ring router + ABP links";
  s.claim = {/*max_register_bits=*/core::sec6_register_bits(t),
             /*per_process_bits=*/core::sec6_register_bits(t),
             "Theorem 1.3 / §6 (one register of 3(t+1) bits per process)"};
  s.factory = [n, t] {
    auto sim = std::make_unique<Sim>(n);
    auto result = std::make_shared<core::Sec6Result>(n);
    core::install_register_stack(*sim, core::Sec6Options{t, /*rounds=*/1},
                                 {0, 1, 1}, result);
    sim->set_user_data(result);
    return sim;
  };
  // Stack processes serve forever (a decided process keeps answering quorum
  // requests), so exhaustive exploration never reaches a complete state:
  // audit seeded random runs instead, stopping once every process decided.
  s.sample_runner = [](Sim& sim, std::uint64_t seed) {
    auto* result = sim.user_data<core::Sec6Result>();
    sim::RandomRunOptions opts;
    opts.seed = seed;
    opts.max_steps = 40'000'000;
    opts.done = [result](const Sim& s) {
      for (int i = 0; i < s.n(); ++i) {
        if (!s.crashed(i) &&
            !result->decision[static_cast<std::size_t>(i)].has_value()) {
          return false;
        }
      }
      return true;
    };
    run_random(sim, opts);
  };
  s.describe = [n, t] {
    return core::describe_register_stack(n, core::Sec6Options{t, /*rounds=*/1});
  };
  s.sample_seeds = 3;
  return s;
}

/// The linter's own canary: a protocol whose declarations and behavior
/// violate every rule the analyzer knows — claims 2-bit registers but
/// declares an 8-bit one, writes a 5-bit value, writes a write-once
/// register twice, writes the other process's register, escapes into a ⊥
/// code point, and declares a register nobody ever reads.
ProtocolSpec misdeclared_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-misdeclared";
  s.description =
      "intentionally misdeclared protocol (linter self-test; always fails)";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "none — a deliberately false claim the linter must refute"};
  s.demo = true;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    const int wide = sim->add_register("demo.wide", 0, 8, Value(0));
    const int once =
        sim->add_bottom_register("demo.once", 0, 2, /*write_once=*/true);
    const int peer = sim->add_register("demo.peer", 1, 2, Value(0));
    const int bot = sim->add_bottom_register("demo.bottom", 1, 2);
    const int dead = sim->add_register("demo.dead", 1, 1, Value(0));
    sim->spawn(0, [=](sim::Env& env) -> sim::Proc {
      co_await env.write(wide, Value(21));  // 5 bits: breaks the 2-bit claim
      co_await env.write(once, Value(1));
      co_await env.write(once, Value(2));   // write-once violation
      co_await env.write(peer, Value(1));   // SWMR violation
      co_return Value(0);
    });
    sim->spawn(1, [=](sim::Env& env) -> sim::Proc {
      (void)co_await env.read(wide);
      co_await env.write(bot, Value(3));    // ⊥ code point of a 2-bit reg
      co_await env.write(dead, Value(5));   // 3 bits into a 1-bit register
      (void)co_await env.read(once);
      (void)co_await env.read(bot);
      co_return Value(1);
    });
    return sim;
  };
  // The canary's IR mirrors its factory faithfully — including the
  // violations — so the static tier must flag it through the same facts the
  // dynamic tier observes (and `--mode both` must see no disagreement).
  s.describe = [] {
    namespace air = ir;
    air::ProtocolIR p;
    p.registers.push_back(air::RegisterDecl{"demo.wide", 0, 8, false, false});
    p.registers.push_back(air::RegisterDecl{"demo.once", 0, 2, true, true});
    p.registers.push_back(air::RegisterDecl{"demo.peer", 1, 2, false, false});
    p.registers.push_back(air::RegisterDecl{"demo.bottom", 1, 2, false, true});
    p.registers.push_back(air::RegisterDecl{"demo.dead", 1, 1, false, false});
    air::ProcessIR p0;
    p0.pid = 0;
    p0.body.push_back(air::write(0, air::ValueExpr::constant(21)));
    p0.body.push_back(air::write(1, air::ValueExpr::constant(1)));
    p0.body.push_back(air::write(1, air::ValueExpr::constant(2)));
    p0.body.push_back(air::write(2, air::ValueExpr::constant(1)));
    air::ProcessIR p1;
    p1.pid = 1;
    p1.body.push_back(air::read(0));
    p1.body.push_back(air::write(3, air::ValueExpr::constant(3)));
    p1.body.push_back(air::write(4, air::ValueExpr::constant(5)));
    p1.body.push_back(air::read(1));
    p1.body.push_back(air::read(3));
    p.processes.push_back(std::move(p0));
    p.processes.push_back(std::move(p1));
    return p;
  };
  s.explore.max_steps = 50;
  return s;
}

}  // namespace

const std::vector<ProtocolSpec>& builtin_protocols() {
  static const std::vector<ProtocolSpec> specs = [] {
    std::vector<ProtocolSpec> v;
    v.push_back(alg1_spec());
    v.push_back(packed_alg1_spec());
    v.push_back(alg2_spec());
    v.push_back(lemma82_spec());
    v.push_back(alg6_spec());
    v.push_back(fast_agreement_spec());
    v.push_back(alg4_spec());
    v.push_back(baseline_spec());
    v.push_back(sec6_spec());
    v.push_back(misdeclared_demo_spec());
    return v;
  }();
  return specs;
}

const ProtocolSpec* find_protocol(const std::string& name) {
  for (const ProtocolSpec& s : builtin_protocols()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace bsr::analysis
