#include "analysis/claims.h"

#include <array>
#include <memory>
#include <utility>

#include "core/alg1.h"
#include "core/alg2.h"
#include "core/alg6.h"
#include "core/baseline.h"
#include "core/lemma82.h"
#include "core/packed.h"
#include "core/sec4.h"
#include "core/sec6.h"
#include "core/sec7.h"
#include "proto/builder.h"
#include "sim/sched.h"
#include "tasks/approx.h"
#include "tasks/explicit_task.h"
#include "topo/bmz.h"

namespace bsr::analysis {

int WidthClaim::effective_bits(const ir::ParamEnv& params) const {
  if (!symbolic_bits.defined()) return max_register_bits;
  const long v = symbolic_bits.eval(params);
  if (v < 0) return 0;
  if (v > 63) return 63;
  return static_cast<int>(v);
}

namespace {

using sim::Sim;

/// Shared sample runner for the §6 stacks: processes serve forever, so
/// random runs stop once every non-crashed process has decided.
std::function<void(Sim&, std::uint64_t)> stack_sample_runner() {
  return [](Sim& sim, std::uint64_t seed) {
    auto* result = sim.user_data<core::Sec6Result>();
    sim::RandomRunOptions opts;
    opts.seed = seed;
    opts.max_steps = 40'000'000;
    opts.done = [result](const Sim& s) {
      for (int i = 0; i < s.n(); ++i) {
        if (!s.crashed(i) &&
            !result->decision[static_cast<std::size_t>(i)].has_value()) {
          return false;
        }
      }
      return true;
    };
    run_random(sim, opts);
  };
}

/// A concrete per-process step budget: the bound every schedule of the
/// spec's instantiation must respect, stated as a constant because the
/// registry pins each protocol at fixed parameters. The checker proves the
/// IR-derived symbolic bound ≤ this budget for all parameter values.
StepClaim const_steps(long steps, std::string source) {
  return {ir::WidthExpr::constant(steps), std::move(source)};
}

/// ApproxAgreement(2, m) materialized for the BMZ machinery (Algorithm 2's
/// precomputation input).
tasks::ExplicitTask approx_task(std::uint64_t m) {
  const tasks::ApproxAgreement aa(2, m);
  std::vector<Value> domain;
  for (std::uint64_t v = 0; v <= m; ++v) domain.emplace_back(v);
  return tasks::materialize(aa, domain);
}

ProtocolSpec alg1_spec() {
  ProtocolSpec s;
  s.name = "alg1";
  s.description = "Algorithm 1: 2-process eps-agreement, 1-bit registers";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "Theorem 1.2 / §5.1 (1-bit R_i, 2-bit ⊥/0/1 I_i; 3 bits per "
             "process, §5.2.3)"};
  s.step_claim = const_steps(
      7, "Theorem 1.2 / §5.1 (wait-free: at most 7 atomic steps at k = 2)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg1(*sim, /*k=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_alg1(/*k=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec packed_alg1_spec() {
  ProtocolSpec s;
  s.name = "alg1-packed";
  s.description =
      "Algorithm 1 over one packed 3-bit register per process";
  s.claim = {/*max_register_bits=*/3, /*per_process_bits=*/3,
             "§5.2.3 (b1+b2-bit register emulates b1- and b2-bit registers)"};
  s.step_claim = const_steps(
      6, "§5.2.3 (packing saves one write: at most 6 steps at k = 2)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_packed_alg1(*sim, /*k=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_packed_alg1(/*k=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec alg2_spec() {
  ProtocolSpec s;
  s.name = "alg2";
  s.description =
      "Algorithm 2: universal 2-process construction, 3-bit coordination";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "Theorem 1.2 / §5.2.3 (3 coordination bits per process; task "
             "inputs through write-once input registers)"};
  s.step_claim = const_steps(
      8, "Theorem 1.2 / §5.2 (universal construction: at most 8 steps)");
  const auto task = std::make_shared<tasks::ExplicitTask>(approx_task(2));
  const auto bmz = std::make_shared<topo::Bmz2>(*task);
  const auto plan = std::make_shared<topo::Bmz2Plan>(bmz->plan());
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg2(*sim, *plan, {Value(0), Value(1)});
    return sim;
  };
  s.describe = [plan] {
    return core::describe_alg2(*plan, {Value(0), Value(1)});
  };
  s.explore.max_steps = 500;
  return s;
}

ProtocolSpec lemma82_spec() {
  ProtocolSpec s;
  s.name = "lemma82";
  s.description =
      "Lemma 8.2: IIS eps-agreement from the 1-bit labelling protocol";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/std::nullopt,
             "Lemma 8.2 / §8.1 (1 data bit + ⊥ per iterated register)"};
  s.step_claim = const_steps(
      4, "Lemma 8.2 / §8.1 (2 steps per IIS iteration, 2 iterations)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_labelling_agreement(*sim, /*rounds=*/2, {0, 1});
    return sim;
  };
  s.describe = [] { return core::describe_labelling_agreement(/*rounds=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec alg6_spec() {
  ProtocolSpec s;
  const core::Alg6Options opts{/*rounds=*/2, /*delta=*/2};
  s.name = "alg6-labelling";
  s.description =
      "Algorithm 6: IS-labelling simulation on two constant-size registers";
  s.claim = {/*max_register_bits=*/core::alg6_register_bits(opts.delta),
             /*per_process_bits=*/core::alg6_register_bits(opts.delta),
             "Theorem 8.1 / §8.2 (⌈log₂(2Δ+1)⌉ + Δ+1 = 6 bits at Δ = 2)"};
  s.step_claim = const_steps(
      4, "Theorem 8.1 / §8.2 (2 steps per simulated round, 2 rounds)");
  s.factory = [opts] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg6_labelling(*sim, opts);
    return sim;
  };
  s.describe = [opts] { return core::describe_alg6_labelling(opts); };
  s.explore.max_steps = 400;
  return s;
}

ProtocolSpec fast_agreement_spec() {
  ProtocolSpec s;
  const core::Alg6Options opts{/*rounds=*/2, /*delta=*/2};
  s.name = "fast-agreement";
  s.description =
      "Theorem 8.1: fast eps-agreement (Algorithm 6 + value assignment)";
  s.claim = {/*max_register_bits=*/core::alg6_register_bits(opts.delta),
             /*per_process_bits=*/core::alg6_register_bits(opts.delta),
             "Theorem 8.1 (6-bit registers, O(log 1/ε) steps)"};
  s.step_claim = const_steps(
      6, "Theorem 8.1 (O(log 1/ε) steps: 6 at the 2-round instantiation)");
  const auto plan = std::make_shared<core::FastAgreementPlan>(opts);
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_fast_agreement(*sim, *plan, {0, 1});
    return sim;
  };
  s.describe = [plan] { return core::describe_fast_agreement(*plan); };
  s.explore.max_steps = 400;
  return s;
}

ProtocolSpec alg4_spec() {
  ProtocolSpec s;
  s.name = "alg4-agreement";
  s.description =
      "Algorithm 4: IIS universality with 1-bit registers (eps-agreement)";
  s.claim = {/*max_register_bits=*/1, /*per_process_bits=*/std::nullopt,
             "Theorem 1.4 / §7 (every iterated register is 1 bit)"};
  s.step_claim = const_steps(
      6, "Theorem 1.4 / §7 (3 bit-register writes/reads per IIS round)");
  const auto plan = std::make_shared<core::Alg4AgreementPlan>(/*k=*/1);
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg4_agreement(*sim, *plan, {0, 1});
    return sim;
  };
  s.describe = [plan] { return core::describe_alg4_agreement(*plan); };
  s.explore.max_steps = 500;
  return s;
}

ProtocolSpec baseline_spec() {
  ProtocolSpec s;
  s.name = "baseline-unbounded";
  s.description =
      "Lemma 2.2 baseline: eps-agreement with unbounded registers";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "Lemma 2.2 (unbounded model: no bounded register may appear)"};
  s.step_claim = const_steps(
      2, "Lemma 2.2 (one write and one read per round, 2 rounds collapsed)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_unbounded_agreement(*sim, /*rounds=*/2, {0, 1});
    return sim;
  };
  s.describe = [] {
    return core::describe_unbounded_agreement(/*n=*/2, /*rounds=*/2);
  };
  s.explore.max_steps = 200;
  return s;
}

ProtocolSpec sec6_spec() {
  ProtocolSpec s;
  const int n = 3;
  const int t = 1;
  s.name = "sec6-stack";
  s.description =
      "Theorem 1.3 register stack: ABD + ring router + ABP links";
  s.claim = {/*max_register_bits=*/core::sec6_register_bits(t),
             /*per_process_bits=*/core::sec6_register_bits(t),
             "Theorem 1.3 / §6 (one register of 3(t+1) bits per process)"};
  s.step_claim.source =
      "§6 (serve-forever stack: no finite per-execution step bound)";
  s.factory = [n, t] {
    auto sim = std::make_unique<Sim>(n);
    auto result = std::make_shared<core::Sec6Result>(n);
    core::install_register_stack(*sim, core::Sec6Options{t, /*rounds=*/1},
                                 {0, 1, 1}, result);
    sim->set_user_data(result);
    return sim;
  };
  // Stack processes serve forever (a decided process keeps answering quorum
  // requests), so exhaustive exploration never reaches a complete state:
  // audit seeded random runs instead, stopping once every process decided.
  s.sample_runner = stack_sample_runner();
  s.describe = [n, t] {
    return core::describe_register_stack(n, core::Sec6Options{t, /*rounds=*/1});
  };
  s.sample_seeds = 3;
  s.params.n = n;
  s.params.t = t;
  return s;
}

ProtocolSpec packed_alg2_spec() {
  ProtocolSpec s;
  s.name = "packed-alg2";
  s.description =
      "Algorithm 2 over one packed 3-bit register per process";
  s.claim = {/*max_register_bits=*/3, /*per_process_bits=*/3,
             "Theorem 1.2 / §5.2.3 (packed universal construction: all "
             "coordination in one 3-bit register per process)"};
  s.step_claim = const_steps(
      7, "Theorem 1.2 / §5.2.3 (packed construction: at most 7 steps)");
  const auto task = std::make_shared<tasks::ExplicitTask>(approx_task(2));
  const auto bmz = std::make_shared<topo::Bmz2>(*task);
  const auto plan = std::make_shared<topo::Bmz2Plan>(bmz->plan());
  s.factory = [plan] {
    auto sim = std::make_unique<Sim>(2);
    core::install_packed_alg2(*sim, *plan, {Value(0), Value(1)});
    return sim;
  };
  s.describe = [plan] {
    return core::describe_packed_alg2(*plan, {Value(0), Value(1)});
  };
  s.explore.max_steps = 500;
  return s;
}

ProtocolSpec alg3_spec() {
  ProtocolSpec s;
  s.name = "alg3-full-info";
  s.description =
      "Algorithm 3: k-round full-information IC protocol (unbounded views)";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "§7 Algorithm 3 (full-information views: no bounded registers)"};
  s.step_claim = const_steps(
      6, "§7 Algorithm 3 (one write-snapshot + 2 reads per round, k = 2)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_full_info_ic(*sim, /*k=*/2, {Value(0), Value(1)});
    return sim;
  };
  s.describe = [] { return core::describe_full_info_ic(/*n=*/2, /*k=*/2); };
  s.explore.max_crashes = 1;
  s.explore.max_steps = 200;
  s.params.n = 2;
  s.params.k = 2;
  return s;
}

ProtocolSpec alg5_spec() {
  ProtocolSpec s;
  s.name = "alg5-snapshot";
  s.description =
      "Algorithm 5: one-shot immediate snapshot from n IC iterations";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "§7 Algorithm 5 / Proposition 7.2 (unbounded IC registers)"};
  s.step_claim = const_steps(
      6, "§7 Algorithm 5 (n IC iterations of 3 steps each at n = 2)");
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    core::install_alg5(*sim, {Value(0), Value(1)});
    return sim;
  };
  s.describe = [] { return core::describe_alg5(/*n=*/2); };
  // alg5_body model-checks that a snapshot is obtained within n iterations,
  // which relies on every process completing: keep crashes off.
  s.explore.max_steps = 200;
  s.params.n = 2;
  return s;
}

ProtocolSpec abd_stack_spec() {
  ProtocolSpec s;
  const int n = 3;
  const int t = 1;
  s.name = "abd-stack";
  s.description =
      "§6 phase 1: ABD atomic registers over native complete-graph channels";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "§6 / ABD (message passing only: no shared registers)"};
  s.step_claim.source =
      "§6 / ABD (serve-forever quorum servers: no finite step bound)";
  s.factory = [n, t] {
    auto sim = std::make_unique<Sim>(n);
    auto result = std::make_shared<core::Sec6Result>(n);
    core::install_abd_stack(*sim, core::Sec6Options{t, /*rounds=*/1},
                            {0, 1, 1}, result);
    sim->set_user_data(result);
    return sim;
  };
  s.sample_runner = stack_sample_runner();
  s.describe = [n, t] {
    return core::describe_abd_stack(n, core::Sec6Options{t, /*rounds=*/1});
  };
  s.sample_seeds = 3;
  s.params.n = n;
  s.params.t = t;
  return s;
}

ProtocolSpec ring_stack_spec() {
  ProtocolSpec s;
  const int n = 4;
  const int t = 1;
  s.name = "ring-stack";
  s.description =
      "§6 phases 1-2: ABD + flooding router over native ring channels";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "§6 / t-augmented ring (messages only; kernel enforces the ring "
             "topology)"};
  s.step_claim.source =
      "§6 / ring router (serve-forever flooding: no finite step bound)";
  s.factory = [n, t] {
    auto sim = std::make_unique<Sim>(core::ring_sim_options(n, t));
    auto result = std::make_shared<core::Sec6Result>(n);
    core::install_ring_stack(*sim, core::Sec6Options{t, /*rounds=*/1},
                             {0, 1, 1, 0}, result);
    sim->set_user_data(result);
    return sim;
  };
  s.sample_runner = stack_sample_runner();
  s.describe = [n, t] {
    return core::describe_ring_stack(n, core::Sec6Options{t, /*rounds=*/1});
  };
  s.sample_seeds = 3;
  s.params.n = n;
  s.params.t = t;
  return s;
}

ProtocolSpec sec4_quantized_spec() {
  ProtocolSpec s;
  const int s_bits = 2;
  const int rounds = 1;
  s.name = "sec4-quantized";
  s.description =
      "§4 quantized early group: s-bit grid estimates (symbolic width "
      "ceil_log2(k))";
  s.claim = {/*max_register_bits=*/s_bits, /*per_process_bits=*/s_bits,
             "§4 / Theorem 1.1 (s-bit footprint registers, s = ⌈log₂ k⌉ for "
             "the k-point grid)"};
  s.claim.symbolic_bits =
      ir::WidthExpr::ceil_log2(ir::WidthExpr::param(ir::Param::K));
  s.step_claim = const_steps(
      2, "§4 / Theorem 1.1 (one estimate write + one read per round)");
  s.factory = [s_bits, rounds] {
    auto setup = core::make_quantized_early_group(s_bits, rounds);
    return std::move(setup.sim);
  };
  s.describe = [s_bits, rounds] {
    return core::describe_quantized_early_group(s_bits, rounds);
  };
  s.explore.max_steps = 50;
  s.params.n = 2;
  s.params.k = 1 << s_bits;  // grid size: 2^s points
  return s;
}

/// The linter's canary, written once against the builder — the violations
/// live in the executable body and reflection carries them into the IR
/// faithfully, so the static tier must flag the protocol through the same
/// facts the dynamic tier observes (and `--mode both` sees no disagreement).
void build_misdeclared(proto::Proto& pr) {
  const int wide = pr.add_register("demo.wide", 0, 8, Value(0));
  const int once =
      pr.add_bottom_register("demo.once", 0, 2, /*write_once=*/true);
  const int peer = pr.add_register("demo.peer", 1, 2, Value(0));
  const int bot = pr.add_bottom_register("demo.bottom", 1, 2);
  const int dead = pr.add_register("demo.dead", 1, 1, Value(0));
  pr.spawn(0, [=](proto::P p) -> sim::Proc {
    // 5 bits: breaks the 2-bit claim.
    co_await p.write(wide, Value(21), ir::ValueExpr::constant(21));
    co_await p.write(once, Value(1), ir::ValueExpr::constant(1));
    // Write-once violation.
    co_await p.write(once, Value(2), ir::ValueExpr::constant(2));
    // SWMR violation: peer is owned by process 1.
    co_await p.write(peer, Value(1), ir::ValueExpr::constant(1));
    co_return Value(0);
  });
  pr.spawn(1, [=](proto::P p) -> sim::Proc {
    (void)co_await p.read(wide);
    // ⊥ code point of a 2-bit bottom register.
    co_await p.write(bot, Value(3), ir::ValueExpr::constant(3));
    // 3 bits into a 1-bit register.
    co_await p.write(dead, Value(5), ir::ValueExpr::constant(5));
    (void)co_await p.read(once);
    (void)co_await p.read(bot);
    co_return Value(1);
  });
}

/// A protocol whose declarations and behavior violate every rule the
/// analyzer knows — claims 2-bit registers but declares an 8-bit one, writes
/// a 5-bit value, writes a write-once register twice, writes the other
/// process's register, escapes into a ⊥ code point, and declares a register
/// nobody ever reads.
ProtocolSpec misdeclared_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-misdeclared";
  s.description =
      "intentionally misdeclared protocol (linter self-test; always fails)";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/3,
             "none — a deliberately false claim the linter must refute"};
  s.step_claim = const_steps(5, "none — 5 straight-line ops per process");
  s.demo = true;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    proto::Proto pr(*sim);
    build_misdeclared(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 2, .params = {}});
    build_misdeclared(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

/// The symbolic canary's single-source body. The write is annotated
/// *relationally*: whatever fits the peer's declared width (3 bits) —
/// exercising the difference-bound layer. The resolved 3-bit set reproduces
/// the dynamic 3-bit observation exactly.
void build_misdeclared_symbolic(proto::Proto& pr) {
  const std::array<int, 2> regs{pr.add_register("sym.R0", 0, 3, Value(0)),
                                pr.add_register("sym.R1", 1, 3, Value(0))};
  for (int me = 0; me < 2; ++me) {
    const int other = 1 - me;
    pr.spawn(me, [=](proto::P p) -> sim::Proc {
      // 3 bits: breaks the 2-bit symbolic budget ⌈log₂ k⌉ + Δ at k=2, Δ=1.
      co_await p.write(regs[static_cast<std::size_t>(me)], Value(5),
                       ir::ValueExpr::rel(regs[static_cast<std::size_t>(other)],
                                          0));
      (void)co_await p.read(regs[static_cast<std::size_t>(other)]);
      co_return Value(me);
    });
  }
}

/// A second canary for the symbolic layer: the claim ⌈log₂ k⌉ + Δ evaluates
/// to 2 bits at (k = 2, Δ = 1), but both processes declare 3-bit registers
/// and write the full 3-bit value 5 — so the declaration and the usage each
/// break the (consistent) symbolic budget, in both tiers identically.
ProtocolSpec misdeclared_symbolic_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-misdeclared-symbolic";
  s.description =
      "intentionally oversized registers against a symbolic claim (linter "
      "self-test; always fails)";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/std::nullopt,
             "none — a deliberately violated symbolic budget"};
  s.step_claim = const_steps(2, "none — one write + one read per process");
  s.claim.symbolic_bits = ir::WidthExpr::add(
      ir::WidthExpr::ceil_log2(ir::WidthExpr::param(ir::Param::K)),
      ir::WidthExpr::param(ir::Param::Delta));
  s.params.n = 2;
  s.params.k = 2;
  s.params.delta = 1;
  s.demo = true;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    proto::Proto pr(*sim);
    build_misdeclared_symbolic(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 2, .params = {}});
    build_misdeclared_symbolic(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

/// The all-params canary's single-source body: every process writes a value
/// it annotates as ⌈log₂ n⌉ bits wide into its own 2-bit register and reads
/// its ring successor. At the spec's n = 3 instantiation ⌈log₂ 3⌉ = 2 fits
/// the declaration and the 2-bit claim exactly; from n = 5 on it needs 3.
void build_holds_small_n(proto::Proto& pr) {
  constexpr std::size_t kN = 3;
  std::array<int, kN> regs{};
  for (std::size_t i = 0; i < kN; ++i) {
    regs[i] = pr.add_register("small.R" + std::to_string(i),
                              static_cast<int>(i), 2, Value(0));
  }
  for (std::size_t me = 0; me < kN; ++me) {
    const std::size_t next = (me + 1) % kN;
    pr.spawn(static_cast<int>(me), [=](proto::P p) -> sim::Proc {
      co_await p.write(regs[me], Value(2),
                       ir::ValueExpr::sym(ir::WidthExpr::ceil_log2(
                           ir::WidthExpr::param(ir::Param::N))));
      (void)co_await p.read(regs[next]);
      co_return Value(static_cast<std::uint64_t>(me));
    });
  }
}

/// The symbolic prover's honesty canary: at its default instantiation
/// (n = 3) every per-env check passes — the declarations, the resolved
/// ⌈log₂ n⌉ write, and the explored executions all fit the 2-bit claim —
/// but the claim is no theorem: the derived write width exceeds 2 bits from
/// n = 5 on. Only `--mode=symbolic` may flag it, with witness environment
/// (n=5, k=1, delta=1, t=0, b=1).
ProtocolSpec holds_small_n_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-holds-small-n";
  s.description =
      "claim holds at the default n=3 but fails from n=5 on "
      "(symbolic-prover self-test; fails only under --mode=symbolic)";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/std::nullopt,
             "none — a claim true at one instantiation, false as a theorem"};
  s.step_claim = const_steps(2, "none — one write + one read per process");
  s.demo = true;
  s.params.n = 3;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(3);
    proto::Proto pr(*sim);
    build_holds_small_n(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 3, .params = {}});
    build_holds_small_n(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

/// The loop-shape canary's single-source body: process 0 sizes a NATIVE
/// for-loop from a value it read, instead of declaring the trip count
/// through a combinator. The solo reflection sees the tracked initial 0 and
/// emits one probe read; a perturbed reflection sees 1 and emits two — the
/// structural diff is exactly what the `loop-shape` rule must catch. Every
/// other rule stays quiet: the registers are unbounded, nobody writes, and
/// both are read.
void build_loop_shape(proto::Proto& pr) {
  const int flag = pr.add_register("shape.flag", 0, sim::kUnbounded, Value(0));
  const int probe =
      pr.add_register("shape.probe", 1, sim::kUnbounded, Value(0));
  pr.spawn(0, [=](proto::P p) -> sim::Proc {
    const std::uint64_t k = (co_await p.read(flag)).value.as_u64();
    for (std::uint64_t i = 0; i <= k; ++i) {
      (void)co_await p.read(probe);
    }
    co_return Value(0);
  });
  pr.spawn(1, [=](proto::P p) -> sim::Proc {
    (void)co_await p.read(flag);
    (void)co_await p.read(probe);
    co_return Value(1);
  });
}

/// A canary for the reflection-stability rule: structurally clean under
/// every width/ownership rule, but its IR depends on what reads return, so
/// only `loop-shape` fires — proving the perturbed second reflection works.
ProtocolSpec loop_shape_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-loop-shape";
  s.description =
      "native loop sized by a read value (loop-shape lint self-test; "
      "always fails statically)";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "none — unbounded registers; the defect is reflective, not "
             "width-related"};
  s.step_claim = const_steps(2, "none — two reads per process as reflected");
  s.demo = true;
  s.params.n = 2;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    proto::Proto pr(*sim);
    build_loop_shape(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 2, .params = {}});
    build_loop_shape(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

/// The interference canary's single-source body. The only cross-process
/// contention on `fi.data` flows through p1's *snapshot*: a footprint
/// analysis that forgot snapshot members are reads would call p0's write of
/// `fi.data` and p1's snapshot independent — and a POR built on that
/// relation would prune schedules whose final snapshots differ. `fi.flag`
/// is ordinary read/write contention (a control pair that must classify
/// dependent either way), and `fi.private` is a bounded register only p0
/// ever touches — the `static-interference` rule must flag it, and must
/// NOT flag `fi.data` (the snapshot read is its contention).
void build_false_independence(proto::Proto& pr) {
  const int data = pr.add_register("fi.data", 0, 2, Value(0));
  const int flag = pr.add_register("fi.flag", 1, 2, Value(0));
  const int priv = pr.add_register("fi.private", 0, 2, Value(0));
  pr.spawn(0, [=](proto::P p) -> sim::Proc {
    co_await p.write(data, Value(2), ir::ValueExpr::constant(2));
    co_await p.write(priv, Value(1), ir::ValueExpr::constant(1));
    (void)co_await p.read(priv);
    (void)co_await p.read(flag);
    co_return Value(0);
  });
  pr.spawn(1, [=](proto::P p) -> sim::Proc {
    co_await p.write(flag, Value(1), ir::ValueExpr::constant(1));
    std::vector<int> members;
    members.push_back(data);
    members.push_back(flag);
    (void)co_await p.snapshot(members);
    co_return Value(1);
  });
}

/// A canary for the interference tier: structurally clean under every
/// width/ownership rule (so plain lint stays green), but shaped so that
/// (a) snapshot-member reads are the only thing making a write/snapshot
/// pair dependent, and (b) one bounded register is provably uncontended —
/// `--mode=interference` must warn on `fi.private` alone.
ProtocolSpec false_independence_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-false-independence";
  s.description =
      "snapshot-only contention plus an uncontended bounded register "
      "(interference-analysis self-test; warns under --mode=interference)";
  s.claim = {/*max_register_bits=*/2, /*per_process_bits=*/std::nullopt,
             "none — a demo pinning the static-interference rule and the "
             "snapshot-read footprint"};
  s.step_claim = const_steps(4, "none — 4 ops on the longer process");
  s.demo = true;
  s.params.n = 2;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    proto::Proto pr(*sim);
    build_false_independence(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 2, .params = {}});
    build_false_independence(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

/// The termination canary's single-source body: process 0 spins on a
/// [0, ∞] retry loop that is declared through `loop_until` — NOT through
/// `serve` — so the IR carries an unbounded loop with no serve marker and
/// no round-budget cap. The gate register starts at 1, so every actual
/// execution breaks out of the loop on its first iteration: the per-env
/// tiers (and exhaustive exploration) see a perfectly well-behaved
/// 2-step process. Only the step engine can tell that nothing *proves*
/// the loop finite. Both registers are unbounded and read by both
/// processes, so every width/ownership/dead-register rule stays quiet.
void build_unbounded_loop(proto::Proto& pr) {
  const int gate = pr.add_register("ub.gate", 0, sim::kUnbounded, Value(1));
  const int out = pr.add_register("ub.out", 1, sim::kUnbounded, Value(0));
  pr.spawn(0, [=](proto::P p) -> sim::Proc {
    co_await p.loop_until(
        ir::Count::between(0, ir::kMany), [&]() -> sim::Task<proto::LoopCtl> {
          const bool ready = (co_await p.read(gate)).value.as_u64() != 0;
          co_return ready ? proto::LoopCtl::Break : proto::LoopCtl::Continue;
        });
    (void)co_await p.read(out);
    co_return Value(0);
  });
  pr.spawn(1, [=](proto::P p) -> sim::Proc {
    (void)co_await p.read(gate);
    (void)co_await p.read(out);
    co_return Value(1);
  });
}

/// A canary for the termination rule: dynamically clean (the loop always
/// breaks immediately at this instantiation), statically clean under every
/// width rule, symbolically clean (no symbolic writes) — but its [0, ∞]
/// loop is neither a declared serve pump nor capped by a round budget, so
/// `--mode=steps` must raise `static-termination` while every other mode
/// passes.
ProtocolSpec unbounded_loop_demo_spec() {
  ProtocolSpec s;
  s.name = "demo-unbounded-loop";
  s.description =
      "undeclared [0, ∞] retry loop that happens to break immediately "
      "(termination-rule self-test; fails only under --mode=steps)";
  s.claim = {/*max_register_bits=*/0, /*per_process_bits=*/std::nullopt,
             "none — unbounded registers; the defect is the missing "
             "termination argument, not width"};
  s.step_claim.source =
      "none — no finite step claim is possible for an unproven loop";
  s.demo = true;
  s.params.n = 2;
  s.factory = [] {
    auto sim = std::make_unique<Sim>(2);
    proto::Proto pr(*sim);
    build_unbounded_loop(pr);
    return sim;
  };
  s.describe = [] {
    proto::Proto pr(proto::Proto::ReflectOptions{.n = 2, .params = {}});
    build_unbounded_loop(pr);
    return std::move(pr).take_ir();
  };
  s.explore.max_steps = 50;
  return s;
}

}  // namespace

const std::vector<ProtocolSpec>& builtin_protocols() {
  static const std::vector<ProtocolSpec> specs = [] {
    std::vector<ProtocolSpec> v;
    v.push_back(alg1_spec());
    v.push_back(packed_alg1_spec());
    v.push_back(alg2_spec());
    v.push_back(packed_alg2_spec());
    v.push_back(lemma82_spec());
    v.push_back(alg6_spec());
    v.push_back(fast_agreement_spec());
    v.push_back(alg4_spec());
    v.push_back(alg3_spec());
    v.push_back(alg5_spec());
    v.push_back(baseline_spec());
    v.push_back(sec4_quantized_spec());
    v.push_back(sec6_spec());
    v.push_back(abd_stack_spec());
    v.push_back(ring_stack_spec());
    v.push_back(misdeclared_demo_spec());
    v.push_back(misdeclared_symbolic_demo_spec());
    v.push_back(holds_small_n_demo_spec());
    v.push_back(loop_shape_demo_spec());
    v.push_back(false_independence_demo_spec());
    v.push_back(unbounded_loop_demo_spec());
    return v;
  }();
  return specs;
}

const ProtocolSpec* find_protocol(const std::string& name) {
  for (const ProtocolSpec& s : builtin_protocols()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace bsr::analysis
