// The `bsr lint` driver: analyze registered protocols, print diagnostics.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bsr::analysis {

struct ProtocolSpec;

/// Which analyzer tier(s) `bsr lint` runs.
enum class LintMode {
  Dynamic,   ///< Explore executions (the default).
  Static,    ///< Abstract interpretation over protocol IR; zero sim steps.
  Symbolic,  ///< Static tier plus the symbolic width prover: claims are
             ///< verified for all parameter valuations (or refuted with a
             ///< witness ParamEnv — an error, exit 1 — or downgraded to a
             ///< small-n cutoff sweep).
  Both,      ///< Run dynamic and static and cross-validate them; any
             ///< disagreement is an internal error (exit 2), each tier
             ///< being the other's oracle.
  Interference,  ///< Static op-footprint interference analysis over the
                 ///< protocol IR: classify every cross-process op pair as
                 ///< independent or may-interfere (the relation the
                 ///< explorer's sleep-set POR consumes) and flag bounded
                 ///< registers no pair ever conflicts on
                 ///< (`static-interference`).
  Steps,     ///< Symbolic step-complexity tier: derive per-process step
             ///< bounds from the IR (`static-termination` on undeclared
             ///< [0, ∞] loops), prove them against the step claims for all
             ///< parameter valuations (`static-step-bound`), and
             ///< cross-validate against the max steps the dynamic tier
             ///< observes (disagreement = exit 2, as in `--mode=both`).
};

struct LintOptions {
  /// Protocols to analyze by registry name. Empty = every built-in protocol
  /// except intentionally-misdeclared demos (which only run when named).
  std::vector<std::string> protocols;
  LintMode mode = LintMode::Dynamic;
  bool json = false;  ///< Emit one JSON document instead of text.
  bool list = false;  ///< Just list the registry; analyze nothing.
  bool help = false;  ///< Print usage and exit 0.
  /// Cap on rendered interference pair detail (`--mode=interference`
  /// `--max-pairs=N`); 0 = unlimited. The default mirrors
  /// kMaxInterferenceDetail (diag.h); totals always cover the full
  /// relation regardless of the cap.
  std::size_t max_pairs = 2048;
  /// Registry override: analyze these specs instead of builtin_protocols().
  /// Not reachable from the CLI — `bsr serve` differential tests use it to
  /// lint instrumented specs (e.g. counting factories that prove a cache
  /// hit runs zero simulator steps). nullptr = the built-in registry.
  const std::vector<ProtocolSpec>* registry = nullptr;
};

/// Runs the conformance analyzer per LintOptions, writing findings to `out`
/// and operational errors to `err`. Exit status: 0 = no errors (warnings
/// allowed), 1 = at least one error-severity diagnostic, 2 = usage or
/// internal failure (unknown protocol, exploration bound exceeded,
/// static/dynamic disagreement).
int run_lint(const LintOptions& opts, std::ostream& out, std::ostream& err);

}  // namespace bsr::analysis
