// The `bsr lint` driver: analyze registered protocols, print diagnostics.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bsr::analysis {

struct LintOptions {
  /// Protocols to analyze by registry name. Empty = every built-in protocol
  /// except intentionally-misdeclared demos (which only run when named).
  std::vector<std::string> protocols;
  bool json = false;  ///< Emit one JSON document instead of text.
  bool list = false;  ///< Just list the registry; analyze nothing.
};

/// Runs the conformance analyzer per LintOptions, writing findings to `out`
/// and operational errors to `err`. Exit status: 0 = no errors (warnings
/// allowed), 1 = at least one error-severity diagnostic, 2 = usage or
/// internal failure (unknown protocol, exploration bound exceeded).
int run_lint(const LintOptions& opts, std::ostream& out, std::ostream& err);

}  // namespace bsr::analysis
