// The model-conformance analyzer.
//
// `analyze_protocol` runs one registered protocol through the full rule set
// and returns a ProtocolReport. Checks come in three layers:
//
//  1. Static — the register table of a freshly-built Sim is audited against
//     the spec's WidthClaim: no bounded register may declare more bits than
//     the paper grants (`claim-width`), and per-process bounded widths must
//     sum within the per-process budget when one is claimed.
//
//  2. Dynamic — every execution within the spec's exploration bounds is run
//     with Sim violation collecting enabled (Sim::set_violation_collecting),
//     so SWMR-ownership, width, write-once, ⊥-domain, topology, and
//     step-atomicity violations surface as diagnostics carrying the exact
//     step index and a replayable schedule fingerprint instead of aborting
//     the search. Protocols with a `sample_runner` (non-terminating server
//     stacks) are audited over seeded random runs instead.
//
//  3. Aggregate — facts that only exist across executions: the observed
//     `max_bits_written` of each bounded register must stay within the
//     claimed budget (`claim-usage`), registers never read on any explored
//     schedule are flagged (`dead-register`), and declared widths no
//     explored execution comes close to using are flagged (`width-unused`).
//
// Rule ids, severities, and their paper grounding: docs/ANALYSIS.md.
#pragma once

#include "analysis/claims.h"
#include "analysis/diag.h"

namespace bsr::analysis {

/// Runs every analyzer rule over `spec`. Throws UsageError if the spec's
/// exploration bounds are exceeded (a registry bug, not a protocol finding).
[[nodiscard]] ProtocolReport analyze_protocol(const ProtocolSpec& spec);

}  // namespace bsr::analysis
