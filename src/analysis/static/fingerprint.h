// Content-addressed fingerprinting of reflected protocol IR.
//
// `bsr serve` answers repeat analysis requests from a cache instead of
// re-running the analyzer. That is sound only because the analyses are pure
// functions of (reflected ProtocolIR, ParamEnv, request mode): the builder's
// reflect mode is deterministic — the `loop-shape` lint exists precisely to
// keep body structure independent of read results — and every tier
// (dynamic exploration included: exhaustive, or sampled with fixed seeds)
// derives its verdict from the spec alone. So a canonical hash of the IR
// plus the instantiation identifies the computation, and two requests with
// equal keys are provably the same request.
//
// `fingerprint` is that hash: a structural 64-bit digest covering every
// field the analyzers can observe — the register table (name, owner, width,
// write-once, ⊥), the channel table, the round budget, the ParamEnv, and
// the full instruction tree of every process (kinds, targets, value
// expressions including symbolic widths, trip counts, peers, serve
// markers). Any edit to any of these changes the digest; renderings or
// summaries derived from the IR cannot change without it.
//
// The mixing discipline follows sim/zobrist.h (splitmix64 chains seeded per
// field family), but lives here because bsr_ir sits below bsr_sim in the
// layering and must not depend on it.
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/static/ir.h"

namespace bsr::analysis::ir {

/// splitmix64's output mixer (mirrors sim::zobrist::mix; bsr_ir cannot
/// link against bsr_sim).
[[nodiscard]] constexpr std::uint64_t fp_mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds one word into a fingerprint chain.
[[nodiscard]] constexpr std::uint64_t fp_combine(std::uint64_t seed,
                                                 std::uint64_t w) noexcept {
  return fp_mix(seed + 0x9e3779b97f4a7c15ULL + w);
}

/// Folds a byte string (names, mode tags) into a fingerprint chain.
[[nodiscard]] std::uint64_t fp_combine_str(std::uint64_t seed,
                                           std::string_view s) noexcept;

/// Structural digest of one ParamEnv (all five parameters, in order).
[[nodiscard]] std::uint64_t fingerprint(const ParamEnv& env) noexcept;

/// Structural digest of a symbolic width term ("" / undefined hashes to a
/// distinct constant, so adding a symbolic claim changes the digest).
[[nodiscard]] std::uint64_t fingerprint(const WidthExpr& w);

/// Structural digest of the whole protocol IR, including its ParamEnv.
/// Equal IRs (operator==) have equal digests; the digest is stable across
/// runs and processes (no pointers, no iteration-order dependence).
[[nodiscard]] std::uint64_t fingerprint(const ProtocolIR& p);

/// Renders a digest as the 16-hex-digit form used in serve responses.
[[nodiscard]] std::string fp_hex(std::uint64_t fp);

}  // namespace bsr::analysis::ir
