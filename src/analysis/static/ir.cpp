#include "analysis/static/ir.h"

#include <algorithm>
#include <utility>

#include "util/errors.h"

namespace bsr::analysis::ir {

Instr read(int reg) {
  Instr i;
  i.kind = Instr::Kind::Read;
  i.reg = reg;
  return i;
}

Instr write(int reg, ValueExpr v) {
  Instr i;
  i.kind = Instr::Kind::Write;
  i.reg = reg;
  i.value = v;
  return i;
}

Instr snapshot(std::vector<int> regs) {
  Instr i;
  i.kind = Instr::Kind::Snapshot;
  i.regs = std::move(regs);
  return i;
}

Instr write_snapshot(int reg, ValueExpr v, std::vector<int> regs) {
  Instr i;
  i.kind = Instr::Kind::WriteSnapshot;
  i.reg = reg;
  i.value = v;
  i.regs = std::move(regs);
  return i;
}

Instr loop(Count iters, std::vector<Instr> body) {
  usage_check(iters.lo >= 0 && (iters.hi == kMany || iters.hi >= iters.lo),
              "ir::loop: malformed trip-count interval");
  Instr i;
  i.kind = Instr::Kind::Loop;
  i.iters = iters;
  i.body = std::move(body);
  return i;
}

Instr maybe(std::vector<Instr> body) {
  return loop(Count::between(0, 1), std::move(body));
}

namespace {

/// Count effects of one instruction sequence on every register.
struct Effect {
  std::vector<Count> writes;
  std::vector<Count> reads;

  explicit Effect(std::size_t nregs) : writes(nregs), reads(nregs) {}

  void seq(const Effect& o) {
    for (std::size_t r = 0; r < writes.size(); ++r) {
      writes[r] = writes[r].seq(o.writes[r]);
      reads[r] = reads[r].seq(o.reads[r]);
    }
  }
  void times(const Count& iters) {
    for (std::size_t r = 0; r < writes.size(); ++r) {
      writes[r] = writes[r].times(iters);
      reads[r] = reads[r].times(iters);
    }
  }
};

class Interpreter {
 public:
  explicit Interpreter(const ProtocolIR& p)
      : p_(p), summaries_(p.registers.size()) {}

  std::vector<RegisterSummary> run() {
    for (const ProcessIR& proc : p_.processes) {
      const Effect e = interpret(proc.body, proc.pid);
      for (std::size_t r = 0; r < summaries_.size(); ++r) {
        // Write/read totals add across processes: the write-once rule is a
        // bound on a register's total writes, whoever performs them.
        summaries_[r].writes = summaries_[r].writes.seq(e.writes[r]);
        summaries_[r].reads = summaries_[r].reads.seq(e.reads[r]);
      }
    }
    for (RegisterSummary& s : summaries_) {
      std::sort(s.writers.begin(), s.writers.end());
      s.writers.erase(std::unique(s.writers.begin(), s.writers.end()),
                      s.writers.end());
    }
    return std::move(summaries_);
  }

 private:
  std::size_t checked(int reg) const {
    usage_check(reg >= 0 && reg < static_cast<int>(p_.registers.size()),
                "ir::summarize: instruction targets a register outside the "
                "declared table");
    return static_cast<std::size_t>(reg);
  }

  /// Records a write's value set and writer, independent of trip counts: a
  /// write under a [0, N] loop still constrains the register's value set.
  void record_write(int reg, const ValueExpr& v, int pid) {
    RegisterSummary& s = summaries_[checked(reg)];
    s.values = s.written ? s.values.join(v) : v;
    s.written = true;
    s.writers.push_back(pid);
  }

  Effect interpret(const std::vector<Instr>& body, int pid) {
    Effect acc(p_.registers.size());
    for (const Instr& i : body) {
      switch (i.kind) {
        case Instr::Kind::Read:
          acc.reads[checked(i.reg)] =
              acc.reads[checked(i.reg)].seq(Count::exactly(1));
          break;
        case Instr::Kind::Write:
          acc.writes[checked(i.reg)] =
              acc.writes[checked(i.reg)].seq(Count::exactly(1));
          record_write(i.reg, i.value, pid);
          break;
        case Instr::Kind::Snapshot:
          for (const int r : i.regs) {
            acc.reads[checked(r)] = acc.reads[checked(r)].seq(Count::exactly(1));
          }
          break;
        case Instr::Kind::WriteSnapshot:
          acc.writes[checked(i.reg)] =
              acc.writes[checked(i.reg)].seq(Count::exactly(1));
          record_write(i.reg, i.value, pid);
          for (const int r : i.regs) {
            acc.reads[checked(r)] = acc.reads[checked(r)].seq(Count::exactly(1));
          }
          break;
        case Instr::Kind::Loop: {
          Effect inner = interpret(i.body, pid);
          inner.times(i.iters);
          acc.seq(inner);
          break;
        }
      }
    }
    return acc;
  }

  const ProtocolIR& p_;
  std::vector<RegisterSummary> summaries_;
};

}  // namespace

std::vector<RegisterSummary> summarize(const ProtocolIR& p) {
  return Interpreter(p).run();
}

}  // namespace bsr::analysis::ir
