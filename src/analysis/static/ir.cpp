#include "analysis/static/ir.h"

#include <algorithm>
#include <utility>

#include "util/errors.h"

namespace bsr::analysis::ir {

Instr read(int reg) {
  Instr i;
  i.kind = Instr::Kind::Read;
  i.reg = reg;
  return i;
}

Instr write(int reg, ValueExpr v) {
  Instr i;
  i.kind = Instr::Kind::Write;
  i.reg = reg;
  i.value = v;
  return i;
}

Instr snapshot(std::vector<int> regs) {
  Instr i;
  i.kind = Instr::Kind::Snapshot;
  i.regs = std::move(regs);
  return i;
}

Instr write_snapshot(int reg, ValueExpr v, std::vector<int> regs) {
  Instr i;
  i.kind = Instr::Kind::WriteSnapshot;
  i.reg = reg;
  i.value = v;
  i.regs = std::move(regs);
  return i;
}

Instr loop(Count iters, std::vector<Instr> body) {
  usage_check(iters.lo >= 0 && (iters.hi == kMany || iters.hi >= iters.lo),
              "ir::loop: malformed trip-count interval");
  Instr i;
  i.kind = Instr::Kind::Loop;
  i.iters = iters;
  i.body = std::move(body);
  return i;
}

Instr serve_loop(std::vector<Instr> body) {
  Instr i = loop(Count::between(0, kMany), std::move(body));
  i.serve = true;
  return i;
}

Instr maybe(std::vector<Instr> body) {
  return loop(Count::between(0, 1), std::move(body));
}

Instr send(int dst, ValueExpr payload) {
  usage_check(dst >= 0, "ir::send: destination pid must be >= 0");
  Instr i;
  i.kind = Instr::Kind::Send;
  i.peer = dst;
  i.value = payload;
  return i;
}

Instr recv(int src) {
  usage_check(src >= -1, "ir::recv: source pid must be >= 0 or -1 (any)");
  Instr i;
  i.kind = Instr::Kind::Recv;
  i.peer = src;
  return i;
}

Instr round(std::vector<Instr> body) {
  Instr i;
  i.kind = Instr::Kind::Round;
  i.body = std::move(body);
  return i;
}

namespace {

/// Count effects of one instruction sequence on registers, channels, and
/// the round counter.
struct Effect {
  std::vector<Count> writes;
  std::vector<Count> reads;
  std::vector<Count> sends;
  std::vector<Count> recvs;
  Count rounds;
  Count steps;

  Effect(std::size_t nregs, std::size_t nchans)
      : writes(nregs), reads(nregs), sends(nchans), recvs(nchans) {}

  void seq(const Effect& o) {
    for (std::size_t r = 0; r < writes.size(); ++r) {
      writes[r] = writes[r].seq(o.writes[r]);
      reads[r] = reads[r].seq(o.reads[r]);
    }
    for (std::size_t c = 0; c < sends.size(); ++c) {
      sends[c] = sends[c].seq(o.sends[c]);
      recvs[c] = recvs[c].seq(o.recvs[c]);
    }
    rounds = rounds.seq(o.rounds);
    steps = steps.seq(o.steps);
  }
  void times(const Count& iters) {
    for (std::size_t r = 0; r < writes.size(); ++r) {
      writes[r] = writes[r].times(iters);
      reads[r] = reads[r].times(iters);
    }
    for (std::size_t c = 0; c < sends.size(); ++c) {
      sends[c] = sends[c].times(iters);
      recvs[c] = recvs[c].times(iters);
    }
    rounds = rounds.times(iters);
    steps = steps.times(iters);
  }
};

class Interpreter {
 public:
  explicit Interpreter(const ProtocolIR& p) : p_(p) {
    summary_.registers.resize(p.registers.size());
    summary_.channels.resize(p.channels.size());
  }

  ProtocolSummary run() {
    for (const ProcessIR& proc : p_.processes) {
      const Effect e = interpret(proc.body, proc.pid);
      for (std::size_t r = 0; r < summary_.registers.size(); ++r) {
        // Write/read totals add across processes: the write-once rule is a
        // bound on a register's total writes, whoever performs them.
        RegisterSummary& s = summary_.registers[r];
        s.writes = s.writes.seq(e.writes[r]);
        s.reads = s.reads.seq(e.reads[r]);
      }
      for (std::size_t c = 0; c < summary_.channels.size(); ++c) {
        ChannelSummary& s = summary_.channels[c];
        s.sends = s.sends.seq(e.sends[c]);
        s.recvs = s.recvs.seq(e.recvs[c]);
      }
      summary_.rounds.push_back(e.rounds);
      summary_.steps.push_back(e.steps);
    }
    for (RegisterSummary& s : summary_.registers) {
      std::sort(s.writers.begin(), s.writers.end());
      s.writers.erase(std::unique(s.writers.begin(), s.writers.end()),
                      s.writers.end());
    }
    std::sort(summary_.off_topology.begin(), summary_.off_topology.end());
    summary_.off_topology.erase(std::unique(summary_.off_topology.begin(),
                                            summary_.off_topology.end()),
                                summary_.off_topology.end());
    return std::move(summary_);
  }

 private:
  std::size_t checked(int reg) const {
    usage_check(reg >= 0 && reg < static_cast<int>(p_.registers.size()),
                "ir::summarize: instruction targets a register outside the "
                "declared table");
    return static_cast<std::size_t>(reg);
  }

  /// Index of the declared channel src→dst, or npos when undeclared.
  std::size_t channel_index(int src, int dst) const {
    for (std::size_t c = 0; c < p_.channels.size(); ++c) {
      if (p_.channels[c].src == src && p_.channels[c].dst == dst) return c;
    }
    return static_cast<std::size_t>(-1);
  }

  /// Resolves symbolic and relational value sets to concrete intervals:
  /// sym(w) → [0, 2^w(params) − 1], rel(base, slack) → the full range of
  /// (declared width of base + slack) bits. Widths ≤ 0 collapse to {0};
  /// widths ≥ 64 (or an unbounded base) escape to ⊤.
  ValueExpr resolve(const ValueExpr& v) const {
    long width = 0;
    if (v.symbolic()) {
      width = v.sym_width.eval(p_.params);
    } else if (v.relational()) {
      const RegisterDecl& base = p_.registers[checked(v.rel_base)];
      if (base.width_bits == kUnboundedWidth) return ValueExpr::any();
      width = static_cast<long>(base.width_bits) + v.rel_slack;
    } else {
      return v;
    }
    if (width <= 0) return ValueExpr::constant(0);
    if (width >= 64) return ValueExpr::any();
    return ValueExpr::bits(static_cast<int>(width));
  }

  /// Records a write's value set and writer, independent of trip counts: a
  /// write under a [0, N] loop still constrains the register's value set.
  void record_write(int reg, const ValueExpr& v, int pid) {
    RegisterSummary& s = summary_.registers[checked(reg)];
    const ValueExpr r = resolve(v);
    s.values = s.written ? s.values.join(r) : r;
    if (v.symbolic()) {
      s.sym = s.sym.defined() ? WidthExpr::max(s.sym, v.sym_width)
                              : v.sym_width;
    }
    s.written = true;
    s.writers.push_back(pid);
  }

  void record_send(std::size_t chan, const ValueExpr& payload) {
    ChannelSummary& s = summary_.channels[chan];
    const ValueExpr r = resolve(payload);
    s.payloads = s.used ? s.payloads.join(r) : r;
    s.used = true;
  }

  Effect interpret(const std::vector<Instr>& body, int pid) {
    Effect acc(p_.registers.size(), p_.channels.size());
    for (const Instr& i : body) {
      // Every non-structural instruction is one atomic step, regardless of
      // whether it lands on a declared channel.
      if (i.kind != Instr::Kind::Loop && i.kind != Instr::Kind::Round) {
        acc.steps = acc.steps.seq(Count::exactly(1));
      }
      switch (i.kind) {
        case Instr::Kind::Read:
          acc.reads[checked(i.reg)] =
              acc.reads[checked(i.reg)].seq(Count::exactly(1));
          break;
        case Instr::Kind::Write:
          acc.writes[checked(i.reg)] =
              acc.writes[checked(i.reg)].seq(Count::exactly(1));
          record_write(i.reg, i.value, pid);
          break;
        case Instr::Kind::Snapshot:
          for (const int r : i.regs) {
            acc.reads[checked(r)] = acc.reads[checked(r)].seq(Count::exactly(1));
          }
          break;
        case Instr::Kind::WriteSnapshot:
          acc.writes[checked(i.reg)] =
              acc.writes[checked(i.reg)].seq(Count::exactly(1));
          record_write(i.reg, i.value, pid);
          for (const int r : i.regs) {
            acc.reads[checked(r)] = acc.reads[checked(r)].seq(Count::exactly(1));
          }
          break;
        case Instr::Kind::Send: {
          if (p_.channels.empty()) break;  // topology unconstrained
          const std::size_t c = channel_index(pid, i.peer);
          if (c == static_cast<std::size_t>(-1)) {
            summary_.off_topology.emplace_back(pid, i.peer);
          } else {
            acc.sends[c] = acc.sends[c].seq(Count::exactly(1));
            record_send(c, i.value);
          }
          break;
        }
        case Instr::Kind::Recv: {
          if (p_.channels.empty() || i.peer < 0) break;
          const std::size_t c = channel_index(i.peer, pid);
          if (c != static_cast<std::size_t>(-1)) {
            acc.recvs[c] = acc.recvs[c].seq(Count::exactly(1));
          }
          break;
        }
        case Instr::Kind::Round: {
          Effect inner = interpret(i.body, pid);
          inner.rounds = inner.rounds.seq(Count::exactly(1));
          acc.seq(inner);
          break;
        }
        case Instr::Kind::Loop: {
          Effect inner = interpret(i.body, pid);
          inner.times(i.iters);
          acc.seq(inner);
          break;
        }
      }
    }
    return acc;
  }

  const ProtocolIR& p_;
  ProtocolSummary summary_;
};

}  // namespace

std::vector<RegisterSummary> summarize(const ProtocolIR& p) {
  return Interpreter(p).run().registers;
}

ProtocolSummary summarize_full(const ProtocolIR& p) {
  return Interpreter(p).run();
}

}  // namespace bsr::analysis::ir
