#include "analysis/static/checker.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/static/interference.h"
#include "analysis/static/steps.h"
#include "proto/builder.h"
#include "util/errors.h"

namespace bsr::analysis {
namespace {

/// Largest integer writable into a `bits`-wide register that reserves its
/// top code point for ⊥.
std::uint64_t bottom_limit(int bits) {
  return (std::uint64_t{1} << bits) - 2;
}

/// Fills one audit row from a register's declaration and summary.
RegisterAudit audit_row(int index, const ir::RegisterDecl& decl,
                        const ir::RegisterSummary& sum) {
  RegisterAudit a;
  a.reg = index;
  a.name = decl.name;
  a.writer = decl.writer;
  a.declared_bits = decl.width_bits;
  a.write_once = decl.write_once;
  a.allows_bottom = decl.allows_bottom;
  a.max_bits = sum.written ? sum.values.max_bits() : 0;
  a.max_writes = sum.writes.hi == ir::kMany ? -1 : sum.writes.hi;
  a.read = sum.reads.hi != 0;
  a.sym_bits = sum.sym.render();
  return a;
}

}  // namespace

ProtocolReport analyze_static(const ProtocolSpec& spec) {
  ProtocolReport rep;
  rep.name = spec.name;
  rep.claim_source = spec.claim.source;
  rep.claimed_register_bits = spec.claim.max_register_bits;
  rep.claimed_bits_expr = spec.claim.symbolic_bits.render();
  rep.mode = Mode::Static;

  const auto add = [&rep, &spec](Diagnostic d) {
    d.protocol = spec.name;
    rep.diagnostics.push_back(std::move(d));
  };

  if (!spec.describe) {
    Diagnostic d;
    d.rule = "ir-missing";
    d.message = "protocol has no describe() hook; the static tier cannot "
                "audit it (add one or exempt it in the claims registry)";
    add(std::move(d));
    return rep;
  }

  ir::ProtocolIR p = spec.describe();
  p.params = spec.params;  // the spec's instantiation is authoritative

  // Reflection-stability rule (`loop-shape`): reflect the body a second
  // time with every read result perturbed. Reflection runs the body solo
  // against tracked register contents, so the IR must not depend on what
  // reads return — data-dependent structure belongs in the combinators,
  // which declare their trip counts. A structural diff means the audited
  // IR describes just one data path and the facts derived from it are not
  // sound over-approximations. A body that *throws* under perturbation
  // (its internal sanity checks reject the corrupted data, e.g. alg2's
  // decision invariants) yields no verdict: the op sequence it emitted
  // before failing proves nothing either way, so only a completed
  // re-reflection can fire the rule.
  {
    std::string unstable;
    try {
      const proto::ScopedReadPerturbation guard;
      ir::ProtocolIR again = spec.describe();
      again.params = spec.params;
      unstable = ir::diff(p, again);
    } catch (const std::exception&) {
      unstable.clear();
    }
    if (!unstable.empty()) {
      std::ostringstream msg;
      msg << "reflected IR changes when read results are perturbed — the "
             "body shapes its control flow around tracked register "
             "contents instead of the combinators: "
          << unstable;
      Diagnostic d;
      d.rule = "loop-shape";
      d.message = msg.str();
      add(std::move(d));
    }
  }

  const ir::ProtocolSummary full = ir::summarize_full(p);
  const std::vector<ir::RegisterSummary>& sums = full.registers;

  // The effective per-register budget: the symbolic claim evaluated at this
  // instantiation when one is stated, else the constant from the table.
  const int budget = spec.claim.effective_bits(spec.params);

  // A symbolic claim must agree with its tabulated constant at the spec's
  // own instantiation — a mismatch is a claims-table bug, not slack.
  if (spec.claim.symbolic_bits.defined() &&
      budget != spec.claim.max_register_bits) {
    std::ostringstream msg;
    msg << "symbolic claim " << spec.claim.symbolic_bits.render()
        << " evaluates to " << budget << " bits at (n=" << spec.params.n
        << ", k=" << spec.params.k << ", delta=" << spec.params.delta
        << ", t=" << spec.params.t << ", b=" << spec.params.b
        << ") but the claims table states " << spec.claim.max_register_bits;
    Diagnostic d;
    d.rule = "static-width";
    d.message = msg.str();
    add(std::move(d));
  }

  const auto reg_diag = [](const char* rule, int index,
                           const ir::RegisterDecl& decl, std::string msg) {
    Diagnostic d;
    d.rule = rule;
    d.pid = decl.writer;
    d.reg = index;
    d.reg_name = decl.name;
    d.message = std::move(msg);
    return d;
  };

  for (std::size_t i = 0; i < p.registers.size(); ++i) {
    const ir::RegisterDecl& decl = p.registers[i];
    const ir::RegisterSummary& sum = sums[i];
    const int index = static_cast<int>(i);
    rep.registers.push_back(audit_row(index, decl, sum));

    // Declared width vs. the claim (the static mirror of `claim-width`).
    if (decl.width_bits != ir::kUnboundedWidth) {
      std::ostringstream msg;
      if (budget == 0) {
        msg << "claim [" << spec.claim.source
            << "] admits no bounded registers, but '" << decl.name
            << "' declares " << decl.width_bits << " bits";
        add(reg_diag("static-width", index, decl, msg.str()));
      } else if (decl.width_bits > budget) {
        msg << "register '" << decl.name << "' declares " << decl.width_bits
            << " bits; the claim [" << spec.claim.source
            << "] grants at most " << budget;
        add(reg_diag("static-width", index, decl, msg.str()));
      }
    }

    // Derived SWMR ownership (the static mirror of `swmr-ownership`).
    if (decl.writer >= 0) {
      for (const int pid : sum.writers) {
        if (pid == decl.writer) continue;
        std::ostringstream msg;
        msg << "IR of process " << pid << " writes register '" << decl.name
            << "' owned by process " << decl.writer;
        Diagnostic d = reg_diag("static-ownership", index, decl, msg.str());
        d.pid = pid;
        add(std::move(d));
      }
    }

    // Derived write count vs. write-once (mirror of `write-once`).
    if (decl.write_once &&
        (sum.writes.hi == ir::kMany || sum.writes.hi > 1)) {
      std::ostringstream msg;
      msg << "write-once register '" << decl.name << "' may be written ";
      if (sum.writes.hi == ir::kMany) {
        msg << "unboundedly often";
      } else {
        msg << sum.writes.hi << " times";
      }
      msg << " in one execution";
      add(reg_diag("static-write-once", index, decl, msg.str()));
    }

    // Derived value set vs. the declared width and the ⊥ code point
    // (mirrors of `width-overflow` and `bottom-escape`).
    if (decl.width_bits != ir::kUnboundedWidth && sum.written) {
      if (sum.values.unbounded) {
        std::ostringstream msg;
        msg << "register '" << decl.name << "' declares " << decl.width_bits
            << " bits but its IR writes values with no finite bound";
        add(reg_diag("static-width", index, decl, msg.str()));
      } else {
        const int bits = sum.values.max_bits();
        if (bits > decl.width_bits) {
          std::ostringstream msg;
          msg << "register '" << decl.name << "' declares " << decl.width_bits
              << " bits but its IR may write " << bits << "-bit values";
          add(reg_diag("static-width", index, decl, msg.str()));
        } else if (decl.allows_bottom &&
                   sum.values.hi > bottom_limit(decl.width_bits)) {
          std::ostringstream msg;
          msg << "register '" << decl.name << "' reserves "
              << bottom_limit(decl.width_bits) + 1
              << " for ⊥ but its IR may write values up to " << sum.values.hi;
          add(reg_diag("static-bottom", index, decl, msg.str()));
        }
        // Derivable usage vs. the claimed budget (mirror of `claim-usage`).
        if (budget > 0 && bits > budget) {
          std::ostringstream msg;
          msg << "register '" << decl.name << "' may hold " << bits
              << "-bit values; the claim [" << spec.claim.source
              << "] budgets " << budget << " bits";
          add(reg_diag("static-width", index, decl, msg.str()));
        }
        rep.max_bounded_bits_used = std::max(rep.max_bounded_bits_used, bits);
      }
    }

    // Registers no IR path reads (mirror of `dead-register`).
    if (sum.reads.hi == 0) {
      Diagnostic d = reg_diag(
          "static-dead-register", index, decl,
          "register '" + decl.name + "' is never read on any IR path");
      d.severity = Severity::Warning;
      add(std::move(d));
    }
  }

  // Per-process declared bounded bits vs. the per-process budget.
  if (spec.claim.per_process_bits.has_value()) {
    std::map<int, int> per_pid;
    for (const ir::RegisterDecl& decl : p.registers) {
      if (decl.width_bits != ir::kUnboundedWidth && decl.writer >= 0) {
        per_pid[decl.writer] += decl.width_bits;
      }
    }
    for (const auto& [pid, bits] : per_pid) {
      if (bits <= *spec.claim.per_process_bits) continue;
      std::ostringstream msg;
      msg << "process " << pid << " owns " << bits
          << " bounded bits across its registers; the claim ["
          << spec.claim.source << "] grants " << *spec.claim.per_process_bits
          << " per process";
      Diagnostic d;
      d.rule = "static-width";
      d.pid = pid;
      d.message = msg.str();
      add(std::move(d));
    }
  }

  // Message-passing rules: the static counterpart of the kernel's channel
  // topology enforcement plus the declared payload and round budgets.
  for (std::size_t c = 0; c < p.channels.size(); ++c) {
    const ir::ChannelDecl& chan = p.channels[c];
    const ir::ChannelSummary& sum = full.channels[c];
    if (chan.width_bits == ir::kUnboundedWidth || !sum.used) continue;
    std::ostringstream msg;
    if (sum.payloads.unbounded) {
      msg << "channel " << chan.src << "→" << chan.dst << " declares "
          << chan.width_bits << "-bit payloads but its IR sends values with "
          << "no finite bound";
    } else if (sum.payloads.max_bits() > chan.width_bits) {
      msg << "channel " << chan.src << "→" << chan.dst << " declares "
          << chan.width_bits << "-bit payloads but its IR may send "
          << sum.payloads.max_bits() << "-bit values";
    } else {
      continue;
    }
    Diagnostic d;
    d.rule = "static-channel-width";
    d.pid = chan.src;
    d.message = msg.str();
    add(std::move(d));
  }
  for (const auto& [pid, dst] : full.off_topology) {
    std::ostringstream msg;
    msg << "IR of process " << pid << " sends to process " << dst
        << ", a link absent from the declared topology";
    Diagnostic d;
    d.rule = "static-topology";
    d.pid = pid;
    d.message = msg.str();
    add(std::move(d));
  }
  if (p.max_rounds != ir::kMany) {
    for (std::size_t i = 0; i < p.processes.size(); ++i) {
      const ir::Count& rounds = full.rounds[i];
      if (rounds.hi != ir::kMany && rounds.hi <= p.max_rounds) continue;
      std::ostringstream msg;
      msg << "process " << p.processes[i].pid << " may execute ";
      if (rounds.hi == ir::kMany) {
        msg << "unboundedly many";
      } else {
        msg << rounds.hi;
      }
      msg << " rounds; the protocol declares at most " << p.max_rounds;
      Diagnostic d;
      d.rule = "static-round-bound";
      d.pid = p.processes[i].pid;
      d.message = msg.str();
      add(std::move(d));
    }
  }

  return rep;
}

// ------------------------------------------------------- symbolic verifier

std::vector<WidthObligation> width_obligations(
    const ProtocolSpec& spec, const ir::ProtocolIR& p,
    const std::vector<ir::RegisterSummary>& sums) {
  std::vector<WidthObligation> out;
  const ir::WidthExpr budget =
      spec.claim.symbolic_bits.defined()
          ? spec.claim.symbolic_bits
          : ir::WidthExpr::constant(spec.claim.max_register_bits);
  for (std::size_t i = 0; i < p.registers.size(); ++i) {
    const ir::RegisterDecl& decl = p.registers[i];
    if (decl.width_bits == ir::kUnboundedWidth) continue;
    const int index = static_cast<int>(i);
    // A declaration is a fixed number chosen for one instantiation; under a
    // symbolic claim it is checked per-env by the static tier, not
    // quantified (⌈log₂ k⌉ at k=4 rightly declares 2 bits — that is no
    // all-params statement). Under a constant claim the declaration *is*
    // the strongest width fact, so it becomes an obligation.
    if (!spec.claim.symbolic_bits.defined()) {
      WidthObligation o;
      o.reg = index;
      o.reg_name = decl.name;
      o.what = "declared width";
      o.lhs = ir::WidthExpr::constant(decl.width_bits);
      o.budget = budget;
      out.push_back(std::move(o));
    }
    // The IR's derived write summary: the symbolic width when one was
    // stated, else the concrete interval's bit count. Unbounded value sets
    // are the static tier's finding, not a provable inequality.
    const ir::RegisterSummary& sum = sums[i];
    if (sum.written && !sum.values.unbounded) {
      WidthObligation o;
      o.reg = index;
      o.reg_name = decl.name;
      o.what = "derived write width";
      o.lhs = sum.sym.defined()
                  ? sum.sym
                  : ir::WidthExpr::constant(sum.values.max_bits());
      o.budget = budget;
      out.push_back(std::move(o));
    }
  }
  return out;
}

namespace {

/// Orders verdict strings by badness for per-register/aggregate joins.
int verdict_rank(const std::string& v) {
  if (v == "refuted") return 3;
  if (!v.empty() && v != "all params") return 2;  // the cutoff form
  if (v == "all params") return 1;
  return 0;
}

}  // namespace

ClaimVerification verify_claims(const ProtocolSpec& spec,
                                const ir::ProtocolIR& p,
                                const std::vector<ir::RegisterSummary>& sums) {
  ClaimVerification v;
  const std::string cutoff = "n <= " + std::to_string(ir::kCutoffN);
  v.status = "all params";
  const auto join = [](std::string& into, const std::string& with) {
    if (verdict_rank(with) > verdict_rank(into)) into = with;
  };
  for (const WidthObligation& o : width_obligations(spec, p, sums)) {
    const ir::Verdict verdict = ir::prove_le(o.lhs, o.budget);
    std::string status;
    switch (verdict.kind) {
      case ir::Verdict::Kind::Proved:
        status = "all params";
        break;
      case ir::Verdict::Kind::Unknown:
        // The prover's grid search found no witness (a grid violation
        // would have refuted), so the claim holds up to the cutoff.
        status = cutoff;
        break;
      case ir::Verdict::Kind::Refuted: {
        status = "refuted";
        std::ostringstream msg;
        msg << "claim [" << spec.claim.source << "] fails for some "
            << "parameters: " << o.what << " of register '" << o.reg_name
            << "' is " << o.lhs.render() << " but the budget is "
            << o.budget.render() << "; witness "
            << ir::render_env(verdict.witness) << " gives "
            << o.lhs.eval(verdict.witness) << " > "
            << o.budget.eval(verdict.witness) << " bits";
        Diagnostic d;
        d.rule = "static-width-all-n";
        d.protocol = spec.name;
        d.reg = o.reg;
        d.reg_name = o.reg_name;
        d.message = msg.str();
        v.refutations.push_back(std::move(d));
        break;
      }
    }
    join(v.per_register[o.reg], status);
    join(v.status, status);
  }
  return v;
}

ClaimVerification verify_claims(const ProtocolSpec& spec) {
  usage_check(static_cast<bool>(spec.describe),
              "verify_claims: spec has no describe() hook");
  ir::ProtocolIR p = spec.describe();
  p.params = spec.params;
  return verify_claims(spec, p, ir::summarize_full(p).registers);
}

ProtocolReport analyze_symbolic(const ProtocolSpec& spec) {
  ProtocolReport rep = analyze_static(spec);
  rep.mode = Mode::Symbolic;
  if (!spec.describe) return rep;  // ir-missing already reported
  ir::ProtocolIR p = spec.describe();
  p.params = spec.params;
  ClaimVerification v = verify_claims(spec, p, ir::summarize_full(p).registers);
  rep.claim_verified = v.status;
  for (RegisterAudit& a : rep.registers) {
    if (const auto it = v.per_register.find(a.reg);
        it != v.per_register.end()) {
      a.verified = it->second;
    }
  }
  for (Diagnostic& d : v.refutations) {
    rep.diagnostics.push_back(std::move(d));
  }
  return rep;
}

ProtocolReport analyze_interference(const ProtocolSpec& spec,
                                    std::size_t max_pairs) {
  ProtocolReport rep;
  rep.name = spec.name;
  rep.claim_source = spec.claim.source;
  rep.claimed_register_bits = spec.claim.max_register_bits;
  rep.claimed_bits_expr = spec.claim.symbolic_bits.render();
  rep.mode = Mode::Interference;

  const auto add = [&rep, &spec](Diagnostic d) {
    d.protocol = spec.name;
    rep.diagnostics.push_back(std::move(d));
  };

  if (!spec.describe) {
    Diagnostic d;
    d.rule = "ir-missing";
    d.message = "protocol has no describe() hook; the interference tier "
                "cannot audit it (add one or exempt it in the claims "
                "registry)";
    add(std::move(d));
    return rep;
  }

  ir::ProtocolIR p = spec.describe();
  p.params = spec.params;  // the spec's instantiation is authoritative

  const itf::Report r = itf::analyze(p);
  rep.interference_ops = static_cast<long>(r.ops.size());
  rep.interference_pairs = static_cast<long>(r.pairs.size());
  rep.interference_independent = r.independent;
  const std::size_t detail =
      max_pairs == 0 ? r.pairs.size() : std::min(r.pairs.size(), max_pairs);
  rep.interference_truncated = r.pairs.size() > detail;
  rep.interference.reserve(detail);
  for (std::size_t i = 0; i < detail; ++i) {
    const itf::OpPair& op = r.pairs[i];
    InterferencePair row;
    row.a = r.ops[static_cast<std::size_t>(op.a)].label;
    row.b = r.ops[static_cast<std::size_t>(op.b)].label;
    row.independent = op.verdict.independent;
    row.reason = itf::render_reason(op.verdict, p.registers);
    rep.interference.push_back(std::move(row));
  }

  // Register audit rows, same derivation as the static tier (so the JSON
  // registers[] block stays populated and comparable across modes).
  const std::vector<ir::RegisterSummary> sums = ir::summarize_full(p).registers;
  for (std::size_t i = 0; i < p.registers.size(); ++i) {
    rep.registers.push_back(
        audit_row(static_cast<int>(i), p.registers[i], sums[i]));
  }

  // `static-interference`: a bounded register some process writes, but that
  // no cross-process op pair ever conflicts on (before the may-violate
  // veto — contended_registers uses the raw footprint overlap). Every
  // schedule-sensitive behavior of the register is then confined to one
  // process's program order, so the width bound constrains nothing that
  // contention could expose: either the bound is decorative or the claims
  // registry misdeclares who touches the register.
  const std::vector<bool> contended =
      itf::contended_registers(r, p.registers.size());
  for (std::size_t i = 0; i < p.registers.size(); ++i) {
    const ir::RegisterDecl& decl = p.registers[i];
    if (decl.width_bits == ir::kUnboundedWidth) continue;
    if (!sums[i].written) continue;
    if (contended[i]) continue;
    std::ostringstream msg;
    msg << "bounded register '" << decl.name << "' (" << decl.width_bits
        << " bits) is written but never accessed in cross-process "
           "conflict: its width claim is vacuous under contention";
    Diagnostic d;
    d.rule = "static-interference";
    d.severity = Severity::Warning;
    d.pid = decl.writer;
    d.reg = static_cast<int>(i);
    d.reg_name = decl.name;
    d.message = msg.str();
    add(std::move(d));
  }

  return rep;
}

// ----------------------------------------------------------- step tier

std::vector<StepObligation> step_obligations(const ProtocolSpec& spec,
                                             const ir::ProtocolIR& p) {
  std::vector<StepObligation> out;
  if (!spec.step_claim.max_steps.defined()) return out;
  const ir::StepReport bounds = ir::step_bounds(p);
  for (const ir::ProcessStepBound& b : bounds.processes) {
    if (!b.finite) continue;  // serve/unproven: no provable inequality
    StepObligation o;
    o.pid = b.pid;
    o.bound = b.bound;
    o.budget = spec.step_claim.max_steps;
    out.push_back(std::move(o));
  }
  return out;
}

StepVerification verify_step_claims(const ProtocolSpec& spec,
                                    const ir::ProtocolIR& p) {
  StepVerification v;
  if (!spec.step_claim.max_steps.defined()) return v;  // status stays ""
  const std::string cutoff = "n <= " + std::to_string(ir::kCutoffN);
  v.status = "all params";
  const auto join = [](std::string& into, const std::string& with) {
    if (verdict_rank(with) > verdict_rank(into)) into = with;
  };
  for (const StepObligation& o : step_obligations(spec, p)) {
    const ir::Verdict verdict = ir::prove_le(o.bound, o.budget);
    std::string status;
    switch (verdict.kind) {
      case ir::Verdict::Kind::Proved:
        status = "all params";
        break;
      case ir::Verdict::Kind::Unknown:
        status = cutoff;
        break;
      case ir::Verdict::Kind::Refuted: {
        status = "refuted";
        std::ostringstream msg;
        msg << "step claim [" << spec.step_claim.source << "] fails for "
            << "some parameters: process " << o.pid << "'s derived bound is "
            << o.bound.render() << " steps but the budget is "
            << o.budget.render() << "; witness "
            << ir::render_env(verdict.witness) << " gives "
            << o.bound.eval(verdict.witness) << " > "
            << o.budget.eval(verdict.witness) << " steps";
        Diagnostic d;
        d.rule = "static-step-bound";
        d.protocol = spec.name;
        d.pid = o.pid;
        d.message = msg.str();
        v.refutations.push_back(std::move(d));
        break;
      }
    }
    join(v.per_process[o.pid], status);
    join(v.status, status);
  }
  return v;
}

ProtocolReport analyze_steps(const ProtocolSpec& spec) {
  ProtocolReport rep;
  rep.name = spec.name;
  rep.claim_source = spec.claim.source;
  rep.claimed_register_bits = spec.claim.max_register_bits;
  rep.claimed_bits_expr = spec.claim.symbolic_bits.render();
  rep.mode = Mode::Steps;
  rep.step_claim_expr = spec.step_claim.max_steps.render();
  rep.step_claim_source = spec.step_claim.source;

  const auto add = [&rep, &spec](Diagnostic d) {
    d.protocol = spec.name;
    rep.diagnostics.push_back(std::move(d));
  };

  if (!spec.describe) {
    Diagnostic d;
    d.rule = "ir-missing";
    d.message = "protocol has no describe() hook; the step tier cannot "
                "audit it (add one or exempt it in the claims registry)";
    add(std::move(d));
    return rep;
  }

  ir::ProtocolIR p = spec.describe();
  p.params = spec.params;  // the spec's instantiation is authoritative

  const ir::StepReport bounds = ir::step_bounds(p);
  StepVerification v = verify_step_claims(spec, p);
  rep.step_verified = v.status;

  for (const ir::ProcessStepBound& b : bounds.processes) {
    StepAudit a;
    a.pid = b.pid;
    a.finite = b.finite;
    a.serve = b.serve;
    a.bound = b.finite ? b.bound.render() : "∞";
    a.bound_eval = b.finite ? b.bound.eval(spec.params) : -1;
    if (const auto it = v.per_process.find(b.pid);
        it != v.per_process.end()) {
      a.verified = it->second;
    }
    rep.steps.push_back(std::move(a));

    // An undeclared [0, ∞] loop: nothing proves the process terminates.
    for (const std::string& loop : b.nonterminating) {
      std::ostringstream msg;
      msg << "process " << b.pid << " contains a [0, ∞] loop with no "
          << "termination argument — neither a declared serve pump nor "
          << "capped by a declared round budget: " << loop;
      Diagnostic d;
      d.rule = "static-termination";
      d.pid = b.pid;
      d.message = msg.str();
      add(std::move(d));
    }
  }

  for (Diagnostic& d : v.refutations) {
    rep.diagnostics.push_back(std::move(d));
  }
  return rep;
}

std::vector<Diagnostic> cross_validate_steps(const ProtocolSpec& spec,
                                             const ProtocolReport& rep) {
  std::vector<Diagnostic> out;
  for (const StepAudit& a : rep.steps) {
    if (!a.finite || a.observed < 0) continue;
    if (a.observed <= a.bound_eval) continue;
    std::ostringstream msg;
    msg << "explorer observed " << a.observed << " steps by process "
        << a.pid << " on one schedule, but the symbolic bound " << a.bound
        << " evaluates to " << a.bound_eval
        << " at this instantiation — the static step engine is unsound "
           "or the IR under-declares a trip count";
    Diagnostic d;
    d.rule = "static-dynamic-disagreement";
    d.protocol = spec.name;
    d.pid = a.pid;
    d.message = msg.str();
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

/// Maps a dynamic error rule to the static rule that must accompany it.
/// Rules absent from the table (step-atomicity, warnings) have no static
/// counterpart — the IR does not model step structure.
const char* static_rule_for(const std::string& dynamic_rule) {
  if (dynamic_rule == "claim-width" || dynamic_rule == "claim-usage" ||
      dynamic_rule == "width-overflow") {
    return "static-width";
  }
  if (dynamic_rule == "write-once") return "static-write-once";
  if (dynamic_rule == "swmr-ownership") return "static-ownership";
  if (dynamic_rule == "bottom-escape") return "static-bottom";
  if (dynamic_rule == "topology") return "static-topology";
  if (dynamic_rule == "round-bound") return "static-round-bound";
  return nullptr;
}

}  // namespace

std::vector<Diagnostic> cross_validate(const ProtocolSpec& spec,
                                       const ProtocolReport& stat,
                                       const ProtocolReport& dyn) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : stat.diagnostics) {
    if (d.rule == "ir-missing") return out;  // nothing to compare against
  }

  const auto disagree = [&out, &spec](int reg, const std::string& reg_name,
                                      std::string msg) {
    Diagnostic d;
    d.rule = "static-dynamic-disagreement";
    d.protocol = spec.name;
    d.reg = reg;
    d.reg_name = reg_name;
    d.message = std::move(msg);
    out.push_back(std::move(d));
  };

  // The register tables must be identical — the IR mirrors the factory.
  if (stat.registers.size() != dyn.registers.size()) {
    std::ostringstream msg;
    msg << "IR declares " << stat.registers.size()
        << " registers but the factory's Sim has " << dyn.registers.size();
    disagree(-1, "", msg.str());
    return out;
  }
  for (std::size_t i = 0; i < stat.registers.size(); ++i) {
    const RegisterAudit& s = stat.registers[i];
    const RegisterAudit& d = dyn.registers[i];
    if (s.name != d.name || s.writer != d.writer ||
        s.declared_bits != d.declared_bits || s.write_once != d.write_once ||
        s.allows_bottom != d.allows_bottom) {
      std::ostringstream msg;
      msg << "register " << i << " declaration differs: IR has ('" << s.name
          << "', writer " << s.writer << ", " << s.declared_bits
          << " bits, write_once=" << s.write_once
          << ", allows_bottom=" << s.allows_bottom << "), Sim has ('"
          << d.name << "', writer " << d.writer << ", " << d.declared_bits
          << " bits, write_once=" << d.write_once
          << ", allows_bottom=" << d.allows_bottom << ")";
      disagree(static_cast<int>(i), d.name, msg.str());
      continue;
    }
    // Static facts over-approximate every execution, so only the dynamic-
    // exceeds-static direction is a disagreement; static slack is expected.
    if (s.max_bits != -1 && d.max_bits > s.max_bits) {
      std::ostringstream msg;
      msg << "explorer observed " << d.max_bits << "-bit values in '"
          << d.name << "' but the IR derives at most " << s.max_bits;
      disagree(static_cast<int>(i), d.name, msg.str());
    }
    if (s.max_writes != -1 && d.max_writes > s.max_writes) {
      std::ostringstream msg;
      msg << "explorer observed " << d.max_writes << " writes to '" << d.name
          << "' in one execution but the IR derives at most " << s.max_writes;
      disagree(static_cast<int>(i), d.name, msg.str());
    }
    if (d.read && !s.read) {
      disagree(static_cast<int>(i), d.name,
               "explorer observed a read of '" + d.name +
                   "' but no IR path reads it");
    }
  }

  // Every dynamic model violation must have a static counterpart on the
  // same register (same process for the register-free per-process checks).
  for (const Diagnostic& d : dyn.diagnostics) {
    if (d.severity != Severity::Error) continue;
    const char* want = static_rule_for(d.rule);
    if (want == nullptr) continue;
    bool matched = false;
    for (const Diagnostic& s : stat.diagnostics) {
      if (s.rule != want || s.reg != d.reg) continue;
      if (d.reg == -1 && s.pid != d.pid) continue;
      matched = true;
      break;
    }
    if (!matched) {
      std::ostringstream msg;
      msg << "dynamic " << d.rule << " diagnostic (" << d.message
          << ") has no matching " << want << " finding in the static tier";
      disagree(d.reg, d.reg_name, msg.str());
    }
  }
  return out;
}

}  // namespace bsr::analysis
