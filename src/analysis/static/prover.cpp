#include "analysis/static/prover.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/errors.h"

namespace bsr::analysis::ir {

bool satisfies_assumptions(const ParamEnv& env) {
  return env.n >= 1 && env.k >= 1 && env.k <= env.n && env.t >= 0 &&
         env.t < env.n && env.delta >= 1 && env.b >= 1;
}

const std::vector<ParamEnv>& assumption_grid() {
  static const std::vector<ParamEnv> grid = [] {
    std::vector<ParamEnv> g;
    for (long n = 1; n <= kCutoffN; ++n) {
      for (long k = 1; k <= n; ++k) {
        for (long t = 0; t < n; ++t) {
          for (long delta = 1; delta <= kCutoffAux; ++delta) {
            for (long b = 1; b <= kCutoffAux; ++b) {
              g.push_back(ParamEnv{n, k, delta, t, b});
            }
          }
        }
      }
    }
    return g;
  }();
  return grid;
}

std::string render_env(const ParamEnv& env) {
  return "(n=" + std::to_string(env.n) + ", k=" + std::to_string(env.k) +
         ", delta=" + std::to_string(env.delta) +
         ", t=" + std::to_string(env.t) + ", b=" + std::to_string(env.b) +
         ")";
}

namespace {

constexpr long kLongMax = std::numeric_limits<long>::max();
constexpr long kLongMin = std::numeric_limits<long>::min();

/// Saturates a wide intermediate back into long — the same clamp
/// WidthExpr::eval applies at every arithmetic node.
long clamp128(__int128 v) {
  if (v > kLongMax) return kLongMax;
  if (v < kLongMin) return kLongMin;
  return static_cast<long>(v);
}

long sat_add(long a, long b) {
  return clamp128(static_cast<__int128>(a) + b);
}

long sat_mul(long a, long b) {
  return clamp128(static_cast<__int128>(a) * b);
}

const char* param_key(Param p) {
  switch (p) {
    case Param::N: return "n";
    case Param::K: return "k";
    case Param::Delta: return "delta";
    case Param::T: return "t";
    case Param::B: return "b";
  }
  return "?";
}

long eval_ceil_log2(long v) {
  return v <= 1 ? 0 : ceil_log2_u64(static_cast<std::uint64_t>(v));
}

long eval_atom(const Atom& a, const ParamEnv& env);

Atom make_param_atom(Param p) {
  Atom a;
  a.kind = Atom::Kind::Parameter;
  a.param = p;
  a.key = param_key(p);
  return a;
}

Atom make_log_atom(Poly p) {
  Atom a;
  a.kind = Atom::Kind::Log;
  a.a = std::make_shared<const Poly>(std::move(p));
  a.key = "ceil_log2(" + a.a->render() + ")";
  return a;
}

Atom make_max_atom(Poly p, Poly q) {
  // Commutative: order the operands by their canonical rendering so that
  // max(a, b) and max(b, a) share one atom key.
  if (q.render() < p.render()) std::swap(p, q);
  Atom a;
  a.kind = Atom::Kind::Max;
  a.a = std::make_shared<const Poly>(std::move(p));
  a.b = std::make_shared<const Poly>(std::move(q));
  a.key = "max(" + a.a->render() + ", " + a.b->render() + ")";
  return a;
}

}  // namespace

// --------------------------------------------------------------------- Poly

Poly Poly::constant(long c) {
  Poly p;
  p.accumulate({}, c);
  return p;
}

Poly Poly::atom(Atom a) {
  Poly p;
  p.accumulate({std::move(a)}, 1);
  return p;
}

void Poly::accumulate(std::vector<Atom> atoms, long coeff) {
  if (coeff == 0) return;
  std::string key;
  for (const Atom& a : atoms) {
    if (!key.empty()) key += "*";
    key += a.key;
  }
  auto it = terms_.find(key);
  if (it == terms_.end()) {
    terms_.emplace(std::move(key), Term{std::move(atoms), coeff});
    return;
  }
  it->second.coeff = sat_add(it->second.coeff, coeff);
  if (it->second.coeff == 0) terms_.erase(it);
}

Poly Poly::add(const Poly& o) const {
  Poly r = *this;
  for (const auto& kv : o.terms_) {
    r.accumulate(kv.second.atoms, kv.second.coeff);
  }
  return r;
}

Poly Poly::sub(const Poly& o) const {
  Poly r = *this;
  for (const auto& kv : o.terms_) {
    r.accumulate(kv.second.atoms, sat_mul(kv.second.coeff, -1));
  }
  return r;
}

Poly Poly::mul(const Poly& o) const {
  Poly r;
  for (const auto& ka : terms_) {
    const Term& ta = ka.second;
    for (const auto& kb : o.terms_) {
      const Term& tb = kb.second;
      std::vector<Atom> atoms = ta.atoms;
      atoms.insert(atoms.end(), tb.atoms.begin(), tb.atoms.end());
      std::sort(atoms.begin(), atoms.end(),
                [](const Atom& x, const Atom& y) { return x.key < y.key; });
      r.accumulate(std::move(atoms), sat_mul(ta.coeff, tb.coeff));
    }
  }
  return r;
}

bool Poly::is_constant() const {
  return terms_.empty() ||
         (terms_.size() == 1 && terms_.begin()->first.empty());
}

long Poly::constant_term() const {
  auto it = terms_.find("");
  return it == terms_.end() ? 0 : it->second.coeff;
}

long Poly::eval(const ParamEnv& env) const {
  long sum = 0;
  for (const auto& kv : terms_) {
    const Term& term = kv.second;
    long prod = term.coeff;
    for (const Atom& a : term.atoms) {
      prod = sat_mul(prod, eval_atom(a, env));
    }
    sum = sat_add(sum, prod);
  }
  return sum;
}

std::string Poly::render() const {
  std::string out;
  const auto append = [&out](const Term& term) {
    if (!out.empty()) out += " + ";
    if (term.atoms.empty()) {
      out += std::to_string(term.coeff);
      return;
    }
    std::string mono;
    for (const Atom& a : term.atoms) {
      if (!mono.empty()) mono += "*";
      mono += a.key;
    }
    if (term.coeff == 1) {
      out += mono;
    } else if (term.coeff == -1) {
      out += "-" + mono;
    } else {
      out += std::to_string(term.coeff) + "*" + mono;
    }
  };
  // Monomials in key order, the constant term (key "") last.
  for (const auto& [key, term] : terms_) {
    if (!key.empty()) append(term);
  }
  if (const long c = constant_term(); c != 0 || out.empty()) {
    append(Term{{}, c});
  }
  return out;
}

bool Poly::operator==(const Poly& o) const {
  if (terms_.size() != o.terms_.size()) return false;
  for (const auto& [key, term] : terms_) {
    auto it = o.terms_.find(key);
    if (it == o.terms_.end() || it->second.coeff != term.coeff) return false;
  }
  return true;
}

namespace {

long eval_atom(const Atom& a, const ParamEnv& env) {
  switch (a.kind) {
    case Atom::Kind::Parameter: return env.get(a.param);
    case Atom::Kind::Log: return eval_ceil_log2(a.a->eval(env));
    case Atom::Kind::Max: return std::max(a.a->eval(env), a.b->eval(env));
  }
  usage_check(false, "eval_atom: unknown atom kind");
  return 0;
}

}  // namespace

// ---------------------------------------------------------------- normalize

Poly normalize(const WidthExpr& e) {
  usage_check(e.defined(), "normalize: undefined expression");
  switch (e.kind()) {
    case WidthExpr::Kind::Undefined: break;  // unreachable: defined() above
    case WidthExpr::Kind::Const: return Poly::constant(e.const_value());
    case WidthExpr::Kind::Parameter:
      return Poly::atom(make_param_atom(e.param_value()));
    case WidthExpr::Kind::Add:
      return normalize(e.child_a()).add(normalize(e.child_b()));
    case WidthExpr::Kind::Mul:
      return normalize(e.child_a()).mul(normalize(e.child_b()));
    case WidthExpr::Kind::CeilLog2: {
      Poly p = normalize(e.child_a());
      if (p.is_constant()) {
        return Poly::constant(eval_ceil_log2(p.constant_term()));
      }
      return Poly::atom(make_log_atom(std::move(p)));
    }
    case WidthExpr::Kind::Max: {
      Poly p = normalize(e.child_a());
      Poly q = normalize(e.child_b());
      // When the arms differ by a constant one dominates everywhere, so the
      // max folds away; this also collapses max(x, x).
      if (const Poly d = p.sub(q); d.is_constant()) {
        return d.constant_term() >= 0 ? p : q;
      }
      return Poly::atom(make_max_atom(std::move(p), std::move(q)));
    }
  }
  usage_check(false, "normalize: unknown expression kind");
  return {};
}

// ----------------------------------------------------------------- interval

namespace {

/// A closed interval over the extended integers: [lo, hi] with either end
/// optionally at ∓∞. Used to bound a Poly's value over the whole standing-
/// assumption region.
struct Ival {
  bool lo_inf = false;  ///< lo is −∞.
  bool hi_inf = false;  ///< hi is +∞.
  long lo = 0;
  long hi = 0;

  [[nodiscard]] static Ival exactly(long v) { return {false, false, v, v}; }
  [[nodiscard]] static Ival at_least(long v) { return {false, true, v, 0}; }
};

/// One extended-integer endpoint, for interval multiplication.
struct Ext {
  bool pinf = false;
  bool ninf = false;
  long v = 0;
};

Ext ext_mul(const Ext& a, const Ext& b) {
  // 0 · ∞ = 0: an infinite bound scaled by a zero coefficient contributes
  // nothing (the monomial is identically zero on that factor).
  const bool a_zero = !a.pinf && !a.ninf && a.v == 0;
  const bool b_zero = !b.pinf && !b.ninf && b.v == 0;
  if (a_zero || b_zero) return {};
  const bool a_pos = a.pinf || (!a.ninf && a.v > 0);
  const bool b_pos = b.pinf || (!b.ninf && b.v > 0);
  if (a.pinf || a.ninf || b.pinf || b.ninf) {
    Ext r;
    if (a_pos == b_pos) {
      r.pinf = true;
    } else {
      r.ninf = true;
    }
    return r;
  }
  return {false, false, sat_mul(a.v, b.v)};
}

bool ext_less(const Ext& a, const Ext& b) {
  if (a.ninf) return !b.ninf;
  if (a.pinf) return false;
  if (b.ninf) return false;
  if (b.pinf) return true;
  return a.v < b.v;
}

Ival ival_add(const Ival& a, const Ival& b) {
  Ival r;
  r.lo_inf = a.lo_inf || b.lo_inf;
  r.hi_inf = a.hi_inf || b.hi_inf;
  if (!r.lo_inf) r.lo = sat_add(a.lo, b.lo);
  if (!r.hi_inf) r.hi = sat_add(a.hi, b.hi);
  return r;
}

Ival ival_mul(const Ival& a, const Ival& b) {
  const Ext ea_lo{false, a.lo_inf, a.lo};
  const Ext ea_hi{a.hi_inf, false, a.hi};
  const Ext eb_lo{false, b.lo_inf, b.lo};
  const Ext eb_hi{b.hi_inf, false, b.hi};
  const Ext prods[4] = {ext_mul(ea_lo, eb_lo), ext_mul(ea_lo, eb_hi),
                        ext_mul(ea_hi, eb_lo), ext_mul(ea_hi, eb_hi)};
  Ext mn = prods[0];
  Ext mx = prods[0];
  for (int i = 1; i < 4; ++i) {
    if (ext_less(prods[i], mn)) mn = prods[i];
    if (ext_less(mx, prods[i])) mx = prods[i];
  }
  Ival r;
  r.lo_inf = mn.ninf;
  r.hi_inf = mx.pinf;
  if (!r.lo_inf) r.lo = mn.v;
  if (!r.hi_inf) r.hi = mx.v;
  return r;
}

Ival ival_of_poly(const Poly& p);

Ival ival_of_atom(const Atom& a) {
  switch (a.kind) {
    case Atom::Kind::Parameter:
      // Standing assumptions: n, k, Δ, b ≥ 1 and t ≥ 0; nothing is bounded
      // above (k ≤ n and t < n are *relational* and handled by the
      // dominance substitutions, not by this box).
      return a.param == Param::T ? Ival::at_least(0) : Ival::at_least(1);
    case Atom::Kind::Log: {
      const Ival o = ival_of_poly(*a.a);
      Ival r;
      r.lo = (o.lo_inf || o.lo <= 1) ? 0 : eval_ceil_log2(o.lo);
      r.hi_inf = o.hi_inf;
      if (!r.hi_inf) r.hi = eval_ceil_log2(o.hi);
      return r;
    }
    case Atom::Kind::Max: {
      const Ival p = ival_of_poly(*a.a);
      const Ival q = ival_of_poly(*a.b);
      Ival r;
      r.lo_inf = p.lo_inf && q.lo_inf;
      if (!r.lo_inf) {
        r.lo = p.lo_inf ? q.lo : (q.lo_inf ? p.lo : std::max(p.lo, q.lo));
      }
      r.hi_inf = p.hi_inf || q.hi_inf;
      if (!r.hi_inf) r.hi = std::max(p.hi, q.hi);
      return r;
    }
  }
  usage_check(false, "ival_of_atom: unknown atom kind");
  return {};
}

Ival ival_of_poly(const Poly& p) {
  Ival sum = Ival::exactly(0);
  for (const auto& kv : p.terms()) {
    const Poly::Term& term = kv.second;
    Ival prod = Ival::exactly(term.coeff);
    for (const Atom& a : term.atoms) {
      prod = ival_mul(prod, ival_of_atom(a));
    }
    sum = ival_add(sum, prod);
  }
  return sum;
}

// ---------------------------------------------------------------- dominance

/// An upper-bound substitute for one atom: a Poly `bound` with
/// atom_value ≤ bound on the whole assumption region.
struct Substitute {
  Poly bound;
  bool valid = false;
};

/// The relational upper bounds the interval box cannot see: k ≤ n,
/// t ≤ n − 1, ⌈log₂ x⌉ ≤ x − 1 (x ≥ 1), max(a, b) ≤ a + b (a, b ≥ 0).
Substitute upper_bound_of(const Atom& a) {
  switch (a.kind) {
    case Atom::Kind::Parameter:
      if (a.param == Param::K) {
        return {Poly::atom(make_param_atom(Param::N)), true};
      }
      if (a.param == Param::T) {
        return {Poly::atom(make_param_atom(Param::N)).add(Poly::constant(-1)),
                true};
      }
      return {};
    case Atom::Kind::Log: {
      const Ival o = ival_of_poly(*a.a);
      if (o.lo_inf) return {};
      if (o.lo >= 1) return {a.a->add(Poly::constant(-1)), true};
      if (o.lo >= 0) return {*a.a, true};
      return {};
    }
    case Atom::Kind::Max: {
      const Ival p = ival_of_poly(*a.a);
      const Ival q = ival_of_poly(*a.b);
      if (!p.lo_inf && p.lo >= 0 && !q.lo_inf && q.lo >= 0) {
        return {a.a->add(*a.b), true};
      }
      return {};
    }
  }
  return {};
}

/// Tries to prove d ≥ 0 on the whole assumption region: first by the
/// interval lower bound, then by substituting relational upper bounds into
/// atoms of negative-coefficient monomials (which only lowers d, so any
/// substituted form that is non-negative witnesses the original).
bool prove_nonneg(const Poly& d, int depth) {
  const Ival iv = ival_of_poly(d);
  if (!iv.lo_inf && iv.lo >= 0) return true;
  if (depth <= 0) return false;
  for (const auto& kv : d.terms()) {
    const Poly::Term& term = kv.second;
    if (term.coeff >= 0) continue;
    for (std::size_t i = 0; i < term.atoms.size(); ++i) {
      const Substitute s = upper_bound_of(term.atoms[i]);
      if (!s.valid) continue;
      // Soundness needs the rest of the monomial non-negative: the
      // substituted factor only grows, so with coeff < 0 the whole
      // monomial only shrinks.
      bool rest_nonneg = true;
      Poly rest = Poly::constant(term.coeff);
      for (std::size_t j = 0; j < term.atoms.size(); ++j) {
        if (j == i) continue;
        const Ival aj = ival_of_atom(term.atoms[j]);
        if (aj.lo_inf || aj.lo < 0) {
          rest_nonneg = false;
          break;
        }
        rest = rest.mul(Poly::atom(term.atoms[j]));
      }
      if (!rest_nonneg) continue;
      Poly whole;
      {
        Poly w = Poly::constant(term.coeff);
        for (const Atom& a : term.atoms) w = w.mul(Poly::atom(a));
        whole = std::move(w);
      }
      const Poly lowered = d.sub(whole).add(rest.mul(s.bound));
      if (prove_nonneg(lowered, depth - 1)) return true;
    }
  }
  return false;
}

constexpr int kNonnegDepth = 8;
constexpr int kStructuralDepth = 16;

Verdict proved(std::string how) {
  return {Verdict::Kind::Proved, {}, std::move(how)};
}

Verdict refuted(ParamEnv witness, std::string how) {
  return {Verdict::Kind::Refuted, witness, std::move(how)};
}

Verdict prove_le_impl(const WidthExpr& lhs, const WidthExpr& rhs, int depth) {
  if (depth <= 0) return {};
  // max on the left splits: max(a, b) ≤ rhs ⟺ a ≤ rhs ∧ b ≤ rhs, so both
  // proofs and refutations propagate.
  if (lhs.kind() == WidthExpr::Kind::Max) {
    const Verdict va = prove_le_impl(lhs.child_a(), rhs, depth - 1);
    if (va.kind == Verdict::Kind::Refuted) return va;
    const Verdict vb = prove_le_impl(lhs.child_b(), rhs, depth - 1);
    if (vb.kind == Verdict::Kind::Refuted) return vb;
    if (va.kind == Verdict::Kind::Proved &&
        vb.kind == Verdict::Kind::Proved) {
      return proved("max split: " + va.how + " / " + vb.how);
    }
  }
  // ceil_log2 is monotone: a ≤ b ⊢ ⌈log₂ a⌉ ≤ ⌈log₂ b⌉ (proof only — the
  // converse direction does not refute).
  if (lhs.kind() == WidthExpr::Kind::CeilLog2 &&
      rhs.kind() == WidthExpr::Kind::CeilLog2) {
    const Verdict v =
        prove_le_impl(lhs.child_a(), rhs.child_a(), depth - 1);
    if (v.kind == Verdict::Kind::Proved) {
      return proved("ceil_log2 monotone: " + v.how);
    }
  }
  // Against a constant bound c the log unfolds exactly:
  // ⌈log₂ v⌉ ≤ c ⟺ v ≤ 2^c (both directions, including v ≤ 1 ↦ 0).
  if (lhs.kind() == WidthExpr::Kind::CeilLog2) {
    if (const Poly r = normalize(rhs); r.is_constant()) {
      const long c = r.constant_term();
      if (c >= 0 && c <= 62) {
        const Verdict v = prove_le_impl(
            lhs.child_a(), WidthExpr::constant(1L << c), depth - 1);
        if (v.kind != Verdict::Kind::Unknown) return v;
      }
    }
  }
  // max on the right: lhs ≤ a ⊢ lhs ≤ max(a, b) (proof only).
  if (rhs.kind() == WidthExpr::Kind::Max) {
    const Verdict va = prove_le_impl(lhs, rhs.child_a(), depth - 1);
    if (va.kind == Verdict::Kind::Proved) {
      return proved("max arm: " + va.how);
    }
    const Verdict vb = prove_le_impl(lhs, rhs.child_b(), depth - 1);
    if (vb.kind == Verdict::Kind::Proved) {
      return proved("max arm: " + vb.how);
    }
  }
  // Generic dominance on the normal-form gap d = rhs − lhs.
  const Poly d = normalize(rhs).sub(normalize(lhs));
  if (d.is_constant()) {
    if (d.constant_term() >= 0) return proved("constant gap");
    // A negative constant gap is violated at *every* assumption-satisfying
    // env; report the minimal one.
    return refuted(ParamEnv{1, 1, 1, 0, 1}, "constant gap");
  }
  if (prove_nonneg(d, kNonnegDepth)) return proved("polynomial dominance");
  if (const Ival iv = ival_of_poly(d); !iv.hi_inf && iv.hi < 0) {
    return refuted(ParamEnv{1, 1, 1, 0, 1}, "negative interval");
  }
  if (const auto w = refute_le_on_grid(lhs, rhs)) {
    return refuted(*w, "grid witness");
  }
  return {};
}

}  // namespace

Verdict prove_le(const WidthExpr& lhs, const WidthExpr& rhs) {
  usage_check(lhs.defined() && rhs.defined(),
              "prove_le: undefined operand expression");
  return prove_le_impl(lhs, rhs, kStructuralDepth);
}

std::optional<ParamEnv> refute_le_on_grid(const WidthExpr& lhs,
                                          const WidthExpr& rhs) {
  usage_check(lhs.defined() && rhs.defined(),
              "refute_le_on_grid: undefined operand expression");
  for (const ParamEnv& env : assumption_grid()) {
    if (lhs.eval(env) > rhs.eval(env)) return env;
  }
  return std::nullopt;
}

}  // namespace bsr::analysis::ir
