#include "analysis/static/domain.h"

#include <algorithm>
#include <limits>

#include "util/errors.h"

namespace bsr::analysis::ir {

namespace {

/// Saturating add of non-negative counts (kMany handled by the callers).
long sat_add(long a, long b) {
  if (a > std::numeric_limits<long>::max() - b) {
    return std::numeric_limits<long>::max();
  }
  return a + b;
}

/// Saturating multiply of non-negative counts.
long sat_mul(long a, long b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<long>::max() / b) {
    return std::numeric_limits<long>::max();
  }
  return a * b;
}

}  // namespace

Count Count::seq(const Count& o) const {
  Count r;
  r.lo = sat_add(lo, o.lo);
  r.hi = (hi == kMany || o.hi == kMany) ? kMany : sat_add(hi, o.hi);
  return r;
}

Count Count::join(const Count& o) const {
  Count r;
  r.lo = std::min(lo, o.lo);
  r.hi = (hi == kMany || o.hi == kMany) ? kMany : std::max(hi, o.hi);
  return r;
}

Count Count::times(const Count& iters) const {
  Count r;
  r.lo = sat_mul(lo, iters.lo == kMany ? 0 : iters.lo);
  if (hi == 0 || iters.hi == 0) {
    r.hi = 0;
  } else if (hi == kMany || iters.hi == kMany) {
    r.hi = kMany;
  } else {
    r.hi = sat_mul(hi, iters.hi);
  }
  return r;
}

ValueExpr ValueExpr::range(std::uint64_t lo, std::uint64_t hi) {
  usage_check(lo <= hi, "ValueExpr::range: lo must not exceed hi");
  return {false, lo, hi};
}

ValueExpr ValueExpr::bits(int b) {
  usage_check(b >= 1 && b <= 63, "ValueExpr::bits: width must be in [1,63]");
  return {false, 0, (std::uint64_t{1} << b) - 1};
}

ValueExpr ValueExpr::join(const ValueExpr& o) const {
  if (unbounded || o.unbounded) return any();
  return {false, std::min(lo, o.lo), std::max(hi, o.hi)};
}

int ValueExpr::max_bits() const {
  return unbounded ? -1 : bit_width_u64(hi);
}

int bit_width_u64(std::uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace bsr::analysis::ir
