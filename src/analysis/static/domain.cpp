#include "analysis/static/domain.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/errors.h"

namespace bsr::analysis::ir {

namespace {

/// Saturating add of non-negative counts (kMany handled by the callers).
long sat_add(long a, long b) {
  if (a > std::numeric_limits<long>::max() - b) {
    return std::numeric_limits<long>::max();
  }
  return a + b;
}

/// Saturating multiply of non-negative counts.
long sat_mul(long a, long b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<long>::max() / b) {
    return std::numeric_limits<long>::max();
  }
  return a * b;
}

}  // namespace

Count Count::seq(const Count& o) const {
  Count r;
  r.lo = sat_add(lo, o.lo);
  r.hi = (hi == kMany || o.hi == kMany) ? kMany : sat_add(hi, o.hi);
  return r;
}

Count Count::join(const Count& o) const {
  Count r;
  r.lo = std::min(lo, o.lo);
  r.hi = (hi == kMany || o.hi == kMany) ? kMany : std::max(hi, o.hi);
  return r;
}

Count Count::times(const Count& iters) const {
  Count r;
  r.lo = sat_mul(lo, iters.lo == kMany ? 0 : iters.lo);
  if (hi == 0 || iters.hi == 0) {
    r.hi = 0;
  } else if (hi == kMany || iters.hi == kMany) {
    r.hi = kMany;
  } else {
    r.hi = sat_mul(hi, iters.hi);
  }
  return r;
}

long ParamEnv::get(Param p) const {
  switch (p) {
    case Param::N: return n;
    case Param::K: return k;
    case Param::Delta: return delta;
    case Param::T: return t;
    case Param::B: return b;
  }
  usage_check(false, "ParamEnv::get: unknown parameter");
  return 0;
}

int ceil_log2_u64(std::uint64_t v) {
  if (v <= 1) return 0;
  return bit_width_u64(v - 1);
}

// ---------------------------------------------------------------- WidthExpr

struct WidthExpr::Node {
  enum class Kind { Const, Parameter, Add, Mul, CeilLog2, Max };
  Kind kind = Kind::Const;
  long value = 0;                ///< Const.
  Param param = Param::N;        ///< Parameter.
  std::shared_ptr<const Node> a;
  std::shared_ptr<const Node> b;
};

WidthExpr WidthExpr::constant(long c) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Const;
  n->value = c;
  return WidthExpr(std::move(n));
}

WidthExpr WidthExpr::param(Param p) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Parameter;
  n->param = p;
  return WidthExpr(std::move(n));
}

namespace {

/// Shared precondition of the compound constructors.
void check_operands(const WidthExpr& a, const WidthExpr& b) {
  usage_check(a.defined() && b.defined(),
              "WidthExpr: cannot build on an undefined expression");
}

}  // namespace

WidthExpr WidthExpr::add(WidthExpr a, WidthExpr b) {
  check_operands(a, b);
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Add;
  n->a = std::move(a.node_);
  n->b = std::move(b.node_);
  return WidthExpr(std::move(n));
}

WidthExpr WidthExpr::mul(WidthExpr a, WidthExpr b) {
  check_operands(a, b);
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Mul;
  n->a = std::move(a.node_);
  n->b = std::move(b.node_);
  return WidthExpr(std::move(n));
}

WidthExpr WidthExpr::max(WidthExpr a, WidthExpr b) {
  check_operands(a, b);
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Max;
  n->a = std::move(a.node_);
  n->b = std::move(b.node_);
  return WidthExpr(std::move(n));
}

WidthExpr WidthExpr::ceil_log2(WidthExpr a) {
  usage_check(a.defined(),
              "WidthExpr: cannot build on an undefined expression");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::CeilLog2;
  n->a = std::move(a.node_);
  return WidthExpr(std::move(n));
}

long WidthExpr::eval(const ParamEnv& env) const {
  usage_check(defined(), "WidthExpr::eval: undefined expression");
  struct Ev {
    const ParamEnv& env;
    long operator()(const Node& n) const {
      switch (n.kind) {
        case Node::Kind::Const: return n.value;
        case Node::Kind::Parameter: return env.get(n.param);
        case Node::Kind::Add:
          return clamp(static_cast<__int128>((*this)(*n.a)) + (*this)(*n.b));
        case Node::Kind::Mul:
          return clamp(static_cast<__int128>((*this)(*n.a)) * (*this)(*n.b));
        case Node::Kind::CeilLog2: {
          const long v = (*this)(*n.a);
          return v <= 1 ? 0
                        : ceil_log2_u64(static_cast<std::uint64_t>(v));
        }
        case Node::Kind::Max: return std::max((*this)(*n.a), (*this)(*n.b));
      }
      usage_check(false, "WidthExpr::eval: unknown node kind");
      return 0;
    }
    /// Saturates a wide intermediate back into long.
    static long clamp(__int128 v) {
      if (v > std::numeric_limits<long>::max()) {
        return std::numeric_limits<long>::max();
      }
      if (v < std::numeric_limits<long>::min()) {
        return std::numeric_limits<long>::min();
      }
      return static_cast<long>(v);
    }
  };
  return Ev{env}(*node_);
}

namespace {

const char* param_name(Param p) {
  switch (p) {
    case Param::N: return "n";
    case Param::K: return "k";
    case Param::Delta: return "delta";
    case Param::T: return "t";
    case Param::B: return "b";
  }
  return "?";
}

}  // namespace

std::string WidthExpr::render() const {
  if (!defined()) return "";
  struct Rn {
    std::string operator()(const Node& n) const {
      switch (n.kind) {
        case Node::Kind::Const: return std::to_string(n.value);
        case Node::Kind::Parameter: return param_name(n.param);
        case Node::Kind::Add:
          return (*this)(*n.a) + " + " + (*this)(*n.b);
        case Node::Kind::Mul:
          return factor(*n.a) + " * " + factor(*n.b);
        case Node::Kind::CeilLog2: return "ceil_log2(" + (*this)(*n.a) + ")";
        case Node::Kind::Max:
          return "max(" + (*this)(*n.a) + ", " + (*this)(*n.b) + ")";
      }
      return "?";
    }
    /// Parenthesizes additive subterms inside a product.
    std::string factor(const Node& n) const {
      const std::string s = (*this)(n);
      return n.kind == Node::Kind::Add ? "(" + s + ")" : s;
    }
  };
  return Rn{}(*node_);
}

WidthExpr::Kind WidthExpr::kind() const {
  if (node_ == nullptr) return Kind::Undefined;
  switch (node_->kind) {
    case Node::Kind::Const: return Kind::Const;
    case Node::Kind::Parameter: return Kind::Parameter;
    case Node::Kind::Add: return Kind::Add;
    case Node::Kind::Mul: return Kind::Mul;
    case Node::Kind::CeilLog2: return Kind::CeilLog2;
    case Node::Kind::Max: return Kind::Max;
  }
  usage_check(false, "WidthExpr::kind: unknown node kind");
  return Kind::Undefined;
}

long WidthExpr::const_value() const {
  usage_check(node_ != nullptr && node_->kind == Node::Kind::Const,
              "WidthExpr::const_value: not a Const node");
  return node_->value;
}

Param WidthExpr::param_value() const {
  usage_check(node_ != nullptr && node_->kind == Node::Kind::Parameter,
              "WidthExpr::param_value: not a Parameter node");
  return node_->param;
}

WidthExpr WidthExpr::child_a() const {
  usage_check(node_ != nullptr && node_->a != nullptr,
              "WidthExpr::child_a: node has no first operand");
  return WidthExpr(node_->a);
}

WidthExpr WidthExpr::child_b() const {
  usage_check(node_ != nullptr && node_->b != nullptr,
              "WidthExpr::child_b: node has no second operand");
  return WidthExpr(node_->b);
}

bool WidthExpr::operator==(const WidthExpr& o) const {
  struct Eq {
    bool operator()(const Node* a, const Node* b) const {
      if (a == b) return true;
      if (a == nullptr || b == nullptr) return false;
      if (a->kind != b->kind) return false;
      switch (a->kind) {
        case Node::Kind::Const: return a->value == b->value;
        case Node::Kind::Parameter: return a->param == b->param;
        case Node::Kind::CeilLog2: return (*this)(a->a.get(), b->a.get());
        case Node::Kind::Add:
        case Node::Kind::Mul:
        case Node::Kind::Max:
          return (*this)(a->a.get(), b->a.get()) &&
                 (*this)(a->b.get(), b->b.get());
      }
      return false;
    }
  };
  return Eq{}(node_.get(), o.node_.get());
}

// ---------------------------------------------------------------- ValueExpr

ValueExpr ValueExpr::range(std::uint64_t lo, std::uint64_t hi) {
  usage_check(lo <= hi, "ValueExpr::range: lo must not exceed hi");
  return {false, lo, hi};
}

ValueExpr ValueExpr::bits(int b) {
  usage_check(b >= 1 && b <= 63, "ValueExpr::bits: width must be in [1,63]");
  return {false, 0, (std::uint64_t{1} << b) - 1};
}

ValueExpr ValueExpr::sym(WidthExpr w) {
  usage_check(w.defined(), "ValueExpr::sym: width expression is undefined");
  ValueExpr v;
  v.sym_width = std::move(w);
  return v;
}

ValueExpr ValueExpr::rel(int base_reg, int slack_bits) {
  usage_check(base_reg >= 0, "ValueExpr::rel: base register must be >= 0");
  usage_check(slack_bits >= 0, "ValueExpr::rel: slack must be >= 0");
  ValueExpr v;
  v.rel_base = base_reg;
  v.rel_slack = slack_bits;
  return v;
}

ValueExpr ValueExpr::join(const ValueExpr& o) const {
  usage_check(!symbolic() && !relational() && !o.symbolic() && !o.relational(),
              "ValueExpr::join: symbolic/relational sets must be resolved "
              "against a register table first");
  if (unbounded || o.unbounded) return any();
  return {false, std::min(lo, o.lo), std::max(hi, o.hi)};
}

int ValueExpr::max_bits() const {
  usage_check(!symbolic() && !relational(),
              "ValueExpr::max_bits: unresolved symbolic/relational set");
  return unbounded ? -1 : bit_width_u64(hi);
}

int bit_width_u64(std::uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace bsr::analysis::ir
