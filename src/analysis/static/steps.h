// Symbolic step-complexity analysis over the protocol IR.
//
// The paper's results are wait-freedom results: every theorem carries an
// implicit per-process step budget alongside its register-width budget.
// This engine derives that budget statically — per process, a symbolic
// upper bound (a WidthExpr over n, k, Δ, t, b) on the number of atomic
// steps in one complete execution, folded through the loop/round structure
// of the reflected IR:
//
//   - every read/write/snapshot/write-snapshot/send/recv costs one step
//     (the paper's §2 accounting; an immediate snapshot is a single step),
//   - a loop with a concrete trip interval [lo, hi] multiplies its body's
//     bound by hi,
//   - a `round` costs only its body,
//   - a [0, ∞] loop is *classified*: if the protocol declares `max_rounds`
//     and every iteration of the loop completes at least one round, the
//     trip count is capped by the round budget; a declared `serve` loop
//     (Instr::serve) is exempt by design — the process is a long-lived
//     server with no finite bound and no diagnostic; any other [0, ∞]
//     loop has no static termination argument and is reported in
//     `nonterminating` (the checker's `static-termination` rule).
//
// The checker (checker.h) feeds each finite bound to the symbolic prover
// to verify the protocol's declared step claim for all parameter values
// (`static-step-bound`), and the lint driver cross-validates it against
// the dynamic tier: exhaustive exploration visits every schedule, so the
// observed per-process max step count must be ≤ the bound evaluated at
// the instantiation's ParamEnv.
#pragma once

#include <string>
#include <vector>

#include "analysis/static/ir.h"

namespace bsr::analysis::ir {

/// The symbolic step bound of one process.
struct ProcessStepBound {
  int pid = 0;
  /// Upper bound on atomic steps per complete execution; undefined when
  /// the process has no finite bound (`finite == false`).
  WidthExpr bound;
  bool finite = true;
  /// The body contains a declared serve loop (exempt-by-design ∞).
  bool serve = false;
  /// Renderings of undeclared [0, ∞] loops with no round-budget cap —
  /// each one is a `static-termination` finding.
  std::vector<std::string> nonterminating;
};

/// Per-process step bounds for a whole protocol.
struct StepReport {
  std::vector<ProcessStepBound> processes;  ///< Indexed like p.processes.
};

/// Folds per-op step costs through every process body of `p` (see the
/// file comment for the cost model and [0, ∞]-loop classification).
[[nodiscard]] StepReport step_bounds(const ProtocolIR& p);

}  // namespace bsr::analysis::ir
