// Abstract domains for the static protocol checker (`bsr lint --static`).
//
// Two domains suffice for the paper's width theorems:
//
//   Count     — intervals [lo, hi] of execution counts with a saturating ∞
//               (hi = kMany), tracking how often an operation may run across
//               loop and branch structure. Sequencing adds, control-flow
//               joins hull, loops multiply by the trip-count interval.
//   ValueExpr — the set of values a write may store: a u64 interval, or
//               "unbounded" for inputs and full-information views the model
//               does not budget. No widening is needed: trip counts are
//               explicit in the IR, so fixpoints are one multiplication.
//
// These are deliberately non-relational — every register budget in the
// paper (Theorems 1.2–1.4, 8.1) is a per-register constant, so an interval
// per register discharges it. Protocols whose widths depend on data would
// need a richer domain (see ROADMAP.md).
#pragma once

#include <cstdint>

namespace bsr::analysis::ir {

/// Sentinel for "no finite bound" in counts and loop trip limits.
inline constexpr long kMany = -1;

/// An interval [lo, hi] of natural numbers; hi == kMany means unbounded.
struct Count {
  long lo = 0;
  long hi = 0;

  [[nodiscard]] static constexpr Count exactly(long n) { return {n, n}; }
  [[nodiscard]] static constexpr Count between(long lo, long hi) {
    return {lo, hi};
  }

  [[nodiscard]] bool unbounded() const { return hi == kMany; }

  /// Sequential composition: both counts accrue.
  [[nodiscard]] Count seq(const Count& o) const;
  /// Control-flow join: either count may be the real one.
  [[nodiscard]] Count join(const Count& o) const;
  /// Repetition: this count accrues once per iteration, iterations ∈ iters.
  [[nodiscard]] Count times(const Count& iters) const;

  bool operator==(const Count&) const = default;
};

/// The set of values a write may store.
struct ValueExpr {
  bool unbounded = false;  ///< Any value (inputs, unbounded views).
  std::uint64_t lo = 0;    ///< Inclusive; meaningful when !unbounded.
  std::uint64_t hi = 0;

  [[nodiscard]] static constexpr ValueExpr constant(std::uint64_t v) {
    return {false, v, v};
  }
  [[nodiscard]] static ValueExpr range(std::uint64_t lo, std::uint64_t hi);
  /// The full range of a b-bit word: [0, 2^b − 1].
  [[nodiscard]] static ValueExpr bits(int b);
  [[nodiscard]] static constexpr ValueExpr any() { return {true, 0, 0}; }

  [[nodiscard]] ValueExpr join(const ValueExpr& o) const;
  /// Bits needed for the largest value in the set (0 for the constant 0);
  /// -1 when the set is unbounded.
  [[nodiscard]] int max_bits() const;

  bool operator==(const ValueExpr&) const = default;
};

/// Bits needed to represent v (0 for 0) — mirrors Value::bit_width().
[[nodiscard]] int bit_width_u64(std::uint64_t v);

}  // namespace bsr::analysis::ir
