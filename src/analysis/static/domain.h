// Abstract domains for the static protocol checker (`bsr lint --static`).
//
// Three layers suffice for the paper's width theorems:
//
//   Count     — intervals [lo, hi] of execution counts with a saturating ∞
//               (hi = kMany), tracking how often an operation may run across
//               loop and branch structure. Sequencing adds, control-flow
//               joins hull, loops multiply by the trip-count interval.
//   ValueExpr — the set of values a write may store: a u64 interval,
//               "unbounded" for inputs and full-information views the model
//               does not budget, a *symbolic* width (a WidthExpr over the
//               model parameters, resolved per instantiation), or a
//               *relational* width (a difference bound against another
//               register: at most `slack` bits wider than its declaration).
//   WidthExpr — a term language over the model parameters n, k, Δ, t, b
//               with constants, +, ·, ceil_log2 and max. Claims and writes
//               may be stated symbolically (e.g. ⌈log₂ k⌉ + Δ) and are
//               evaluated against the ParamEnv of the instantiation the
//               analyzer actually runs.
//
// No widening is needed: trip counts are explicit in the IR, so fixpoints
// are one multiplication, and symbolic/relational forms are resolved to
// concrete intervals by the interpreter before any join.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace bsr::analysis::ir {

/// Sentinel for "no finite bound" in counts and loop trip limits.
inline constexpr long kMany = -1;

/// An interval [lo, hi] of natural numbers; hi == kMany means unbounded.
struct Count {
  long lo = 0;
  long hi = 0;

  [[nodiscard]] static constexpr Count exactly(long n) { return {n, n}; }
  [[nodiscard]] static constexpr Count between(long lo, long hi) {
    return {lo, hi};
  }

  [[nodiscard]] bool unbounded() const { return hi == kMany; }

  /// Sequential composition: both counts accrue.
  [[nodiscard]] Count seq(const Count& o) const;
  /// Control-flow join: either count may be the real one.
  [[nodiscard]] Count join(const Count& o) const;
  /// Repetition: this count accrues once per iteration, iterations ∈ iters.
  [[nodiscard]] Count times(const Count& iters) const;

  bool operator==(const Count&) const = default;
};

/// Model parameters a symbolic width may mention.
enum class Param { N, K, Delta, T, B };

/// One instantiation of the model parameters: the process count n, the
/// approximate-agreement precision k, the footprint diameter Δ, the crash
/// budget t, and a free per-protocol size parameter b.
struct ParamEnv {
  long n = 0;
  long k = 0;
  long delta = 0;
  long t = 0;
  long b = 0;

  [[nodiscard]] long get(Param p) const;

  bool operator==(const ParamEnv&) const = default;
};

/// ⌈log₂ v⌉ with ceil_log2(0) = ceil_log2(1) = 0.
[[nodiscard]] int ceil_log2_u64(std::uint64_t v);

/// A symbolic width: a term over the model parameters. Immutable; copies
/// share structure. A default-constructed WidthExpr is *undefined* — the
/// "no symbolic claim" state — and must not be evaluated.
class WidthExpr {
 public:
  /// Structural node kinds, exposed so the symbolic prover (prover.h) can
  /// traverse the term without owning the representation. Undefined is the
  /// default-constructed "no expression" state.
  enum class Kind { Undefined, Const, Parameter, Add, Mul, CeilLog2, Max };

  WidthExpr() = default;

  [[nodiscard]] static WidthExpr constant(long c);
  [[nodiscard]] static WidthExpr param(Param p);
  [[nodiscard]] static WidthExpr add(WidthExpr a, WidthExpr b);
  [[nodiscard]] static WidthExpr mul(WidthExpr a, WidthExpr b);
  [[nodiscard]] static WidthExpr ceil_log2(WidthExpr a);
  [[nodiscard]] static WidthExpr max(WidthExpr a, WidthExpr b);

  [[nodiscard]] bool defined() const { return node_ != nullptr; }

  /// Evaluates under `env` (saturating; negative subterms clamp to 0 under
  /// ceil_log2). Throws UsageError when undefined.
  [[nodiscard]] long eval(const ParamEnv& env) const;

  /// Human/JSON rendering, e.g. "ceil_log2(k) + delta"; "" when undefined.
  [[nodiscard]] std::string render() const;

  /// Structural equality (undefined == undefined).
  bool operator==(const WidthExpr& o) const;

  // Structural introspection for the prover's normalizer. The child
  // accessors and the value accessors throw UsageError when called on a
  // node of the wrong kind (or on an undefined expression).
  [[nodiscard]] Kind kind() const;
  [[nodiscard]] long const_value() const;   ///< Kind::Const only.
  [[nodiscard]] Param param_value() const;  ///< Kind::Parameter only.
  /// First operand of Add/Mul/Max/CeilLog2.
  [[nodiscard]] WidthExpr child_a() const;
  /// Second operand of Add/Mul/Max (CeilLog2 is unary).
  [[nodiscard]] WidthExpr child_b() const;

 private:
  struct Node;
  explicit WidthExpr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
};

/// The set of values a write may store.
struct ValueExpr {
  bool unbounded = false;  ///< Any value (inputs, unbounded views).
  std::uint64_t lo = 0;    ///< Inclusive; meaningful when !unbounded.
  std::uint64_t hi = 0;
  /// When defined, the set is [0, 2^w − 1] for w = sym_width evaluated at
  /// the protocol's ParamEnv; lo/hi are placeholders until resolved.
  WidthExpr sym_width;
  /// When >= 0, a difference bound: the set fits in (declared width of
  /// register rel_base) + rel_slack bits; resolved against the register
  /// table by the interpreter.
  int rel_base = -1;
  int rel_slack = 0;

  [[nodiscard]] static ValueExpr constant(std::uint64_t v) {
    return {false, v, v};
  }
  [[nodiscard]] static ValueExpr range(std::uint64_t lo, std::uint64_t hi);
  /// The full range of a b-bit word: [0, 2^b − 1].
  [[nodiscard]] static ValueExpr bits(int b);
  [[nodiscard]] static ValueExpr any() { return {true, 0, 0}; }
  /// All values of width w(params) bits, w a symbolic expression.
  [[nodiscard]] static ValueExpr sym(WidthExpr w);
  /// All values at most `slack_bits` wider than register `base_reg`'s
  /// declared width (difference-bound pair).
  [[nodiscard]] static ValueExpr rel(int base_reg, int slack_bits);

  [[nodiscard]] bool symbolic() const { return sym_width.defined(); }
  [[nodiscard]] bool relational() const { return rel_base >= 0; }

  /// Join of two *resolved* (concrete or unbounded) sets; throws UsageError
  /// on unresolved symbolic/relational operands.
  [[nodiscard]] ValueExpr join(const ValueExpr& o) const;
  /// Bits needed for the largest value in the set (0 for the constant 0);
  /// -1 when the set is unbounded. Requires a resolved set.
  [[nodiscard]] int max_bits() const;

  bool operator==(const ValueExpr&) const = default;
};

/// Bits needed to represent v (0 for 0) — mirrors Value::bit_width().
[[nodiscard]] int bit_width_u64(std::uint64_t v);

}  // namespace bsr::analysis::ir
