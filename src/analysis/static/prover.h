// The symbolic width prover: decides WidthExpr inequalities for *all*
// parameter valuations, not one ParamEnv.
//
// The paper states its width bounds as theorems over every n, k, Δ, t, b,
// but evaluating a symbolic claim at one instantiation only checks one
// point of that family. This module closes the gap in three layers:
//
//   normalize  — rewrites a WidthExpr into a canonical sum-of-products-
//                over-⌈log₂⌉ form (Poly): integer-coefficient monomials
//                over atoms, where an atom is a bare parameter, a
//                ceil_log2 of a normalized subterm, or a max of two
//                normalized subterms. Constants fold, multiplication
//                distributes over addition, like monomials merge, and
//                commutative operands sort — so two terms are equal for
//                every valuation iff their normal forms are identical
//                (modulo the saturation the evaluator shares).
//   prove_le   — a three-valued proof engine for `lhs ≤ rhs` under the
//                model's standing assumptions
//
//                    n ≥ 1,  1 ≤ k ≤ n,  0 ≤ t ≤ n − 1,  Δ ≥ 1,  b ≥ 1
//
//                using monotonicity (case-splitting max on the left,
//                arm-domination on the right, ceil_log2 monotone, the
//                2^c bound for ceil_log2 against a constant) and
//                interval/polynomial dominance (lower-bound rhs − lhs
//                over the assumption box; substitute the relational
//                upper bounds k ≤ n, t ≤ n − 1, ⌈log₂ x⌉ ≤ x − 1 and
//                max(a, b) ≤ a + b into negative monomials). Verdicts:
//                Proved (holds for every valuation), Refuted (with a
//                concrete witness ParamEnv), Unknown (neither rule set
//                closes the claim — the caller falls back to the cutoff
//                harness below).
//   the grid   — assumption_grid() enumerates every assumption-satisfying
//                ParamEnv with n ≤ kCutoffN (and Δ, b ≤ kCutoffAux): the
//                refutation sampler inside prove_le and the checker's
//                cutoff harness, which downgrades an Unknown claim to
//                "verified: n ≤ kCutoffN" by per-env evaluation.
//
// Everything here is sound but incomplete: Proved and Refuted are exact
// statements, Unknown is an honest shrug. The prover lives in bsr_ir — it
// speaks only WidthExpr/ParamEnv and knows nothing of claims or protocols
// (the obligation extraction sits in the checker, one layer up).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/static/domain.h"

namespace bsr::analysis::ir {

/// The model's standing assumptions: n ≥ 1, 1 ≤ k ≤ n, 0 ≤ t < n, Δ ≥ 1,
/// b ≥ 1. Proofs quantify over exactly this set; witnesses come from it.
[[nodiscard]] bool satisfies_assumptions(const ParamEnv& env);

/// The small-n cutoff: Unknown claims are verified per-env up to here.
inline constexpr long kCutoffN = 6;
/// Grid bound for the free parameters Δ and b (unbounded in the model but
/// monotone in every claim the registry states, so a small sweep suffices
/// for witness search).
inline constexpr long kCutoffAux = 3;

/// Every ParamEnv satisfying the standing assumptions with n ≤ kCutoffN and
/// Δ, b ≤ kCutoffAux, in lexicographic (n, k, t, Δ, b) order — so the first
/// violating entry is a minimal witness. Built once.
[[nodiscard]] const std::vector<ParamEnv>& assumption_grid();

/// "(n=5, k=1, delta=1, t=0, b=1)" — witness rendering for diagnostics.
[[nodiscard]] std::string render_env(const ParamEnv& env);

/// One multiplicative atom of a canonical monomial. `key` is the atom's
/// canonical rendering and doubles as its total order: equal keys mean
/// structurally equal atoms (operand polys render canonically too).
struct Atom {
  enum class Kind { Parameter, Log, Max };
  Kind kind = Kind::Parameter;
  Param param = Param::N;         ///< Kind::Parameter.
  std::shared_ptr<const class Poly> a;  ///< Log operand / first Max operand.
  std::shared_ptr<const class Poly> b;  ///< Second Max operand.
  std::string key;
};

/// A WidthExpr in canonical sum-of-products-over-⌈log₂⌉ form: a map from
/// monomial key to (sorted atom vector, integer coefficient). The empty
/// monomial is the constant term. Arithmetic saturates like WidthExpr::eval.
class Poly {
 public:
  struct Term {
    std::vector<Atom> atoms;  ///< Sorted by key; empty = constant term.
    long coeff = 0;
  };

  Poly() = default;  ///< The zero polynomial.
  [[nodiscard]] static Poly constant(long c);
  [[nodiscard]] static Poly atom(Atom a);

  [[nodiscard]] Poly add(const Poly& o) const;
  [[nodiscard]] Poly sub(const Poly& o) const;
  [[nodiscard]] Poly mul(const Poly& o) const;

  /// True when no monomial mentions an atom (the constant term may be 0).
  [[nodiscard]] bool is_constant() const;
  [[nodiscard]] long constant_term() const;

  /// Evaluates under `env` with the same saturation and ceil_log2 clamping
  /// as WidthExpr::eval — normalize preserves eval on every ParamEnv.
  [[nodiscard]] long eval(const ParamEnv& env) const;

  /// Canonical rendering, e.g. "ceil_log2(k) + 2*n + 3". "0" for zero.
  [[nodiscard]] std::string render() const;

  /// Monomial-key → term map (constant term under ""). Exposed for the
  /// prover's dominance rules and for tests.
  [[nodiscard]] const std::map<std::string, Term>& terms() const {
    return terms_;
  }

  bool operator==(const Poly& o) const;

 private:
  void accumulate(std::vector<Atom> atoms, long coeff);
  std::map<std::string, Term> terms_;
};

/// Rewrites `e` into canonical form. Throws UsageError on an undefined
/// expression. For every env, normalize(e).eval(env) == e.eval(env).
[[nodiscard]] Poly normalize(const WidthExpr& e);

/// Outcome of prove_le. Proved and Refuted are exact; Unknown means the
/// rule set gave up and the caller should fall back to the cutoff grid.
struct Verdict {
  enum class Kind { Proved, Refuted, Unknown };
  Kind kind = Kind::Unknown;
  ParamEnv witness;  ///< A violating assumption-satisfying env (Refuted).
  std::string how;   ///< One-line note naming the deciding rule.
};

/// Decides `lhs ≤ rhs` for all ParamEnvs satisfying the standing
/// assumptions. Proved: the inequality holds at every such env. Refuted:
/// `witness` is an env where lhs.eval > rhs.eval. Unknown: neither the
/// symbolic rules nor the grid search settled it (the inequality holds on
/// the whole assumption grid). Throws UsageError on undefined operands.
[[nodiscard]] Verdict prove_le(const WidthExpr& lhs, const WidthExpr& rhs);

/// The cutoff harness's primitive: evaluates `lhs ≤ rhs` at every grid env
/// (the per-env evaluator, swept) and returns the first — minimal —
/// violating env, or nullopt when the claim holds everywhere on the grid.
[[nodiscard]] std::optional<ParamEnv> refute_le_on_grid(const WidthExpr& lhs,
                                                        const WidthExpr& rhs);

}  // namespace bsr::analysis::ir
