// Renderings and structural diffing of the protocol IR (declared in ir.h).
//
// `render` gives a stable, human-readable text form of every IR node —
// consumed by the builder transition harness (tests/builder_test.cpp) and
// the `bsr doc` reference generator. `diff` walks two IRs in lockstep and
// names the exact path of the first structural difference, so a reflected
// IR that drifts from an expected shape fails with an actionable message
// rather than a bare "not equal".
#include <sstream>
#include <string>

#include "analysis/static/ir.h"

namespace bsr::analysis::ir {

std::string render(const Count& c) {
  std::ostringstream os;
  os << "[" << c.lo << ", ";
  if (c.unbounded()) {
    os << "∞";
  } else {
    os << c.hi;
  }
  os << "]";
  return os.str();
}

std::string render(const ValueExpr& v) {
  std::ostringstream os;
  if (v.symbolic()) {
    os << "bits(" << v.sym_width.render() << ")";
  } else if (v.relational()) {
    os << "rel(r" << v.rel_base << " + " << v.rel_slack << "b)";
  } else if (v.unbounded) {
    os << "any";
  } else if (v.lo == v.hi) {
    os << v.lo;
  } else {
    os << "[" << v.lo << ", " << v.hi << "]";
  }
  return os.str();
}

std::string render(const RegisterDecl& r) {
  std::ostringstream os;
  os << r.name << " writer=" << r.writer << " width=";
  if (r.width_bits == kUnboundedWidth) {
    os << "unbounded";
  } else {
    os << r.width_bits << "b";
  }
  if (r.write_once) os << " write-once";
  if (r.allows_bottom) os << " ⊥";
  return os.str();
}

namespace {

void render_regs(std::ostringstream& os, const std::vector<int>& regs) {
  os << "{";
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (i > 0) os << ", ";
    os << "r" << regs[i];
  }
  os << "}";
}

void render_body(std::ostringstream& os, const std::vector<Instr>& body) {
  os << "{";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0) os << "; ";
    os << render(body[i]);
  }
  os << "}";
}

}  // namespace

std::string render(const Instr& i) {
  std::ostringstream os;
  switch (i.kind) {
    case Instr::Kind::Read:
      os << "read r" << i.reg;
      break;
    case Instr::Kind::Write:
      os << "write r" << i.reg << " " << render(i.value);
      break;
    case Instr::Kind::Snapshot:
      os << "snapshot ";
      render_regs(os, i.regs);
      break;
    case Instr::Kind::WriteSnapshot:
      os << "write-snapshot r" << i.reg << " " << render(i.value) << " ";
      render_regs(os, i.regs);
      break;
    case Instr::Kind::Loop:
      os << (i.serve ? "serve " : "loop ") << render(i.iters) << " ";
      render_body(os, i.body);
      break;
    case Instr::Kind::Send:
      os << "send p" << i.peer << " " << render(i.value);
      break;
    case Instr::Kind::Recv:
      if (i.peer < 0) {
        os << "recv any";
      } else {
        os << "recv p" << i.peer;
      }
      break;
    case Instr::Kind::Round:
      os << "round ";
      render_body(os, i.body);
      break;
  }
  return os.str();
}

std::string render(const ProtocolIR& p) {
  std::ostringstream os;
  os << "registers:\n";
  for (std::size_t r = 0; r < p.registers.size(); ++r) {
    os << "  r" << r << ": " << render(p.registers[r]) << "\n";
  }
  if (!p.channels.empty()) {
    os << "channels:\n";
    for (const ChannelDecl& c : p.channels) {
      os << "  p" << c.src << " -> p" << c.dst << " width=";
      if (c.width_bits == kUnboundedWidth) {
        os << "unbounded";
      } else {
        os << c.width_bits << "b";
      }
      os << "\n";
    }
  }
  if (p.max_rounds != kMany) os << "max_rounds: " << p.max_rounds << "\n";
  for (const ProcessIR& proc : p.processes) {
    os << "process p" << proc.pid << ":\n";
    for (const Instr& i : proc.body) {
      os << "  " << render(i) << "\n";
    }
  }
  return os.str();
}

namespace {

/// First difference between two instruction sequences, or "" when equal;
/// `path` names the enclosing context (e.g. "process p1 body[2]").
std::string diff_body(const std::vector<Instr>& a, const std::vector<Instr>& b,
                      const std::string& path) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] == b[i]) continue;
    const std::string at = path + "[" + std::to_string(i) + "]";
    // Recurse into structurally matching loop/round shells so the message
    // points at the innermost difference.
    if (a[i].kind == b[i].kind && !a[i].body.empty() && !b[i].body.empty() &&
        a[i].iters == b[i].iters && a[i].reg == b[i].reg &&
        a[i].peer == b[i].peer && a[i].value == b[i].value &&
        a[i].regs == b[i].regs && a[i].serve == b[i].serve) {
      return diff_body(a[i].body, b[i].body, at + ".body");
    }
    return at + ": " + render(a[i]) + "  !=  " + render(b[i]);
  }
  if (a.size() != b.size()) {
    return path + ": " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size()) + " instructions";
  }
  return "";
}

}  // namespace

std::string diff(const ProtocolIR& a, const ProtocolIR& b) {
  if (a.registers.size() != b.registers.size()) {
    return "register tables: " + std::to_string(a.registers.size()) + " vs " +
           std::to_string(b.registers.size()) + " registers";
  }
  for (std::size_t r = 0; r < a.registers.size(); ++r) {
    if (!(a.registers[r] == b.registers[r])) {
      return "register r" + std::to_string(r) + ": " + render(a.registers[r]) +
             "  !=  " + render(b.registers[r]);
    }
  }
  if (a.channels.size() != b.channels.size()) {
    return "channel tables: " + std::to_string(a.channels.size()) + " vs " +
           std::to_string(b.channels.size()) + " channels";
  }
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    if (!(a.channels[c] == b.channels[c])) {
      return "channel " + std::to_string(c) + ": p" +
             std::to_string(a.channels[c].src) + "->p" +
             std::to_string(a.channels[c].dst) + " vs p" +
             std::to_string(b.channels[c].src) + "->p" +
             std::to_string(b.channels[c].dst) + " (or widths differ)";
    }
  }
  if (a.max_rounds != b.max_rounds) {
    return "max_rounds: " + std::to_string(a.max_rounds) + " vs " +
           std::to_string(b.max_rounds);
  }
  if (!(a.params == b.params)) return "params differ";
  if (a.processes.size() != b.processes.size()) {
    return "process counts: " + std::to_string(a.processes.size()) + " vs " +
           std::to_string(b.processes.size());
  }
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    if (a.processes[p].pid != b.processes[p].pid) {
      return "process " + std::to_string(p) + ": pid " +
             std::to_string(a.processes[p].pid) + " vs " +
             std::to_string(b.processes[p].pid);
    }
    const std::string d =
        diff_body(a.processes[p].body, b.processes[p].body,
                  "process p" + std::to_string(a.processes[p].pid) + " body");
    if (!d.empty()) return d;
  }
  return "";
}

}  // namespace bsr::analysis::ir
