// A static intermediate representation of shared-memory protocols, and an
// abstract interpreter deriving per-register facts from it.
//
// Every built-in protocol emits its IR through `ProtocolSpec::describe` (a
// hand-written mirror of the coroutine body, kept honest by the
// cross-validation in `bsr lint --mode both`): the register table it
// declares, and per process a sequence of read/write/snapshot operations
// with explicit loop structure. Branches are loops with trip count [0, 1];
// data-dependent early exits widen a loop's trip count to an interval.
//
// `summarize` interprets the IR over the interval domains of domain.h and
// returns, per register: how often it may be written and read in one
// complete execution, the set of values writes may store, and which
// processes write it. The checker (checker.h) turns those facts into
// `static-*` diagnostics against the paper's width claims — once per
// protocol, independent of any schedule, with zero simulator steps
// (Bollig–Markey–Sankur-style parameterized verification, specialized to
// the width bounds this library reproduces).
//
// This library is deliberately free of core/sim dependencies so protocol
// modules can emit IR without a layering cycle.
#pragma once

#include <string>
#include <vector>

#include "analysis/static/domain.h"

namespace bsr::analysis::ir {

/// Mirror of sim::kUnbounded for register widths (no sim dependency).
inline constexpr int kUnboundedWidth = -1;

/// One register declaration, mirroring sim::Sim's register table.
struct RegisterDecl {
  std::string name;
  int writer = -1;  ///< Owning pid; -1 = multi-writer.
  int width_bits = kUnboundedWidth;
  bool write_once = false;
  bool allows_bottom = false;  ///< One code point (2^b − 1) reserved for ⊥.
};

/// One abstract operation. Loops carry their body and a trip-count
/// interval; everything else targets registers by index into the
/// ProtocolIR's register table.
struct Instr {
  enum class Kind { Read, Write, Snapshot, WriteSnapshot, Loop };
  Kind kind = Kind::Read;
  int reg = -1;             ///< Read / Write / WriteSnapshot target.
  std::vector<int> regs;    ///< Snapshot / WriteSnapshot group.
  ValueExpr value;          ///< Write / WriteSnapshot value set.
  Count iters;              ///< Loop trip-count interval.
  std::vector<Instr> body;  ///< Loop body.
};

[[nodiscard]] Instr read(int reg);
[[nodiscard]] Instr write(int reg, ValueExpr v);
[[nodiscard]] Instr snapshot(std::vector<int> regs);
/// The immediate-snapshot primitive: one write plus a snapshot of `regs`,
/// in a single step.
[[nodiscard]] Instr write_snapshot(int reg, ValueExpr v,
                                   std::vector<int> regs);
[[nodiscard]] Instr loop(Count iters, std::vector<Instr> body);
/// A conditional block: a loop executing 0 or 1 times.
[[nodiscard]] Instr maybe(std::vector<Instr> body);

struct ProcessIR {
  int pid = 0;
  std::vector<Instr> body;
};

/// A whole protocol: the register table plus one op sequence per process.
struct ProtocolIR {
  std::vector<RegisterDecl> registers;
  std::vector<ProcessIR> processes;
};

/// Per-register facts derived by abstract interpretation.
struct RegisterSummary {
  Count writes;  ///< Total writes per complete execution, all processes.
  Count reads;   ///< Total reads (each snapshot member counts once).
  /// Join of every value a write instruction may store, regardless of how
  /// often it executes (sound for width checks: a loop bound of [0, N]
  /// still contributes its value set).
  ValueExpr values;
  bool written = false;      ///< Some write instruction targets it.
  std::vector<int> writers;  ///< Pids with a write targeting it (sorted).
};

/// Interprets every process body over the count/value domains and combines
/// them into per-register summaries (indexed like p.registers). Throws
/// UsageError when an instruction targets a register outside the table.
[[nodiscard]] std::vector<RegisterSummary> summarize(const ProtocolIR& p);

}  // namespace bsr::analysis::ir
