// A static intermediate representation of shared-memory and
// message-passing protocols, and an abstract interpreter deriving
// per-register and per-channel facts from it.
//
// Every built-in protocol emits its IR through `ProtocolSpec::describe`,
// *derived* from the executable coroutine body by the proto builder's
// reflect mode (src/proto/builder.h; `bsr lint --mode both` cross-validates
// the two interpreters of that single description): the register table it
// declares, and per process a sequence of read/write/snapshot operations
// with explicit loop structure. Branches are loops with trip count [0, 1];
// data-dependent early exits widen a loop's trip count to an interval.
//
// Message-passing protocols additionally declare a channel table (the
// topology) and emit send/recv/round ops; a declared `max_rounds` lets the
// checker bound the round structure statically, mirroring the dynamic
// `topology` findings of the simulator's link layer.
//
// Write values may be concrete intervals, *symbolic* widths (WidthExpr
// terms over the model parameters, resolved against the ProtocolIR's
// ParamEnv), or *relational* widths (difference bounds against another
// register's declaration) — see domain.h. The interpreter resolves both
// forms to concrete intervals before joining, so the checker stays
// interval-based.
//
// `summarize` interprets the IR over the interval domains of domain.h and
// returns, per register: how often it may be written and read in one
// complete execution, the set of values writes may store, and which
// processes write it. `summarize_full` additionally reports per-channel
// traffic, off-topology sends, and per-process round counts. The checker
// (checker.h) turns those facts into `static-*` diagnostics against the
// paper's width claims — once per protocol, independent of any schedule,
// with zero simulator steps (Bollig–Markey–Sankur-style parameterized
// verification, specialized to the width bounds this library reproduces).
//
// This library is deliberately free of core/sim dependencies so protocol
// modules can emit IR without a layering cycle.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/static/domain.h"

namespace bsr::analysis::ir {

/// Mirror of sim::kUnbounded for register widths (no sim dependency).
inline constexpr int kUnboundedWidth = -1;

/// One register declaration, mirroring sim::Sim's register table.
struct RegisterDecl {
  std::string name;
  int writer = -1;  ///< Owning pid; -1 = multi-writer.
  int width_bits = kUnboundedWidth;
  bool write_once = false;
  bool allows_bottom = false;  ///< One code point (2^b − 1) reserved for ⊥.

  bool operator==(const RegisterDecl&) const = default;
};

/// One directed link of the declared topology. A protocol with an empty
/// channel table leaves its topology unconstrained (complete graph).
struct ChannelDecl {
  int src = -1;
  int dst = -1;
  int width_bits = kUnboundedWidth;  ///< Payload budget; -1 = unbudgeted.

  bool operator==(const ChannelDecl&) const = default;
};

/// One abstract operation. Loops carry their body and a trip-count
/// interval; register ops target the ProtocolIR's register table by index;
/// message ops name peer pids directly.
struct Instr {
  enum class Kind { Read, Write, Snapshot, WriteSnapshot, Loop, Send, Recv,
                    Round };
  Kind kind = Kind::Read;
  int reg = -1;             ///< Read / Write / WriteSnapshot target.
  std::vector<int> regs;    ///< Snapshot / WriteSnapshot group.
  ValueExpr value;          ///< Write / WriteSnapshot value; Send payload.
  Count iters;              ///< Loop trip-count interval.
  std::vector<Instr> body;  ///< Loop / Round body.
  int peer = -1;            ///< Send destination / Recv source (-1 = any).
  /// Declared-forever service pump (P::serve): the loop is [0, ∞] *by
  /// design* — long-lived server processes that answer requests until the
  /// run ends. The step-complexity engine (steps.h) exempts serve loops
  /// from the static-termination rule; an undeclared [0, ∞] loop is flagged.
  bool serve = false;

  /// Structural equality, recursive over loop/round bodies.
  bool operator==(const Instr&) const = default;
};

[[nodiscard]] Instr read(int reg);
[[nodiscard]] Instr write(int reg, ValueExpr v);
[[nodiscard]] Instr snapshot(std::vector<int> regs);
/// The immediate-snapshot primitive: one write plus a snapshot of `regs`,
/// in a single step.
[[nodiscard]] Instr write_snapshot(int reg, ValueExpr v,
                                   std::vector<int> regs);
[[nodiscard]] Instr loop(Count iters, std::vector<Instr> body);
/// A declared-forever service pump: a [0, ∞] loop with the `serve` marker
/// set, exempting it from the static-termination rule (see Instr::serve).
[[nodiscard]] Instr serve_loop(std::vector<Instr> body);
/// A conditional block: a loop executing 0 or 1 times.
[[nodiscard]] Instr maybe(std::vector<Instr> body);
/// A message send to `dst` with payload set `payload`.
[[nodiscard]] Instr send(int dst, ValueExpr payload);
/// A message receive from `src`; src = -1 receives from any peer.
[[nodiscard]] Instr recv(int src = -1);
/// One communication round: its body executes once and the enclosing
/// process's round count increments by one (scaled by surrounding loops).
[[nodiscard]] Instr round(std::vector<Instr> body);

struct ProcessIR {
  int pid = 0;
  std::vector<Instr> body;

  bool operator==(const ProcessIR&) const = default;
};

/// A whole protocol: the register table, the declared topology, and one op
/// sequence per process, with the parameter instantiation used to resolve
/// symbolic widths.
struct ProtocolIR {
  std::vector<RegisterDecl> registers;
  std::vector<ProcessIR> processes;
  std::vector<ChannelDecl> channels;  ///< Empty = topology unconstrained.
  long max_rounds = kMany;            ///< Round budget; kMany = undeclared.
  ParamEnv params;                    ///< Instantiation for symbolic widths.

  /// Whole-protocol structural equality — the regression harness behind
  /// the builder's reflect mode (see tests/builder_test.cpp).
  bool operator==(const ProtocolIR&) const = default;
};

/// Renderings for diffs and generated docs.
[[nodiscard]] std::string render(const Count& c);
[[nodiscard]] std::string render(const ValueExpr& v);
[[nodiscard]] std::string render(const RegisterDecl& r);
[[nodiscard]] std::string render(const Instr& i);  ///< Single line; nested.
[[nodiscard]] std::string render(const ProtocolIR& p);

/// Human-readable first structural difference between two protocol IRs
/// ("" when equal): the anchor of the builder transition harness, so a
/// reflected IR that drifts from an expected shape names the exact path.
[[nodiscard]] std::string diff(const ProtocolIR& a, const ProtocolIR& b);

/// Per-register facts derived by abstract interpretation.
struct RegisterSummary {
  Count writes;  ///< Total writes per complete execution, all processes.
  Count reads;   ///< Total reads (each snapshot member counts once).
  /// Join of every value a write instruction may store, regardless of how
  /// often it executes (sound for width checks: a loop bound of [0, N]
  /// still contributes its value set). Symbolic/relational write forms are
  /// resolved to concrete intervals before joining.
  ValueExpr values;
  /// Join (pointwise max) of the symbolic width expressions of all
  /// symbolic writes to this register; undefined when none were symbolic.
  WidthExpr sym;
  bool written = false;      ///< Some write instruction targets it.
  std::vector<int> writers;  ///< Pids with a write targeting it (sorted).
};

/// Per-channel facts (indexed like ProtocolIR::channels).
struct ChannelSummary {
  Count sends;        ///< Messages sent over the link per execution.
  Count recvs;        ///< Explicit recvs naming the link's source.
  ValueExpr payloads; ///< Join of payload sets; resolved like write values.
  bool used = false;  ///< Some send targets this link.
};

/// Everything the abstract interpreter derives in one pass.
struct ProtocolSummary {
  std::vector<RegisterSummary> registers;
  std::vector<ChannelSummary> channels;
  /// Sends whose (src pid, dst) pair is outside the declared channel table
  /// (only populated when the table is non-empty), sorted and deduplicated.
  std::vector<std::pair<int, int>> off_topology;
  /// Per-process round counts (indexed like ProtocolIR::processes).
  std::vector<Count> rounds;
  /// Per-process atomic step counts (indexed like ProtocolIR::processes):
  /// every read/write/snapshot/write-snapshot/send/recv is one step, in the
  /// paper's accounting (§2: a step is one atomic access; the immediate
  /// snapshot is a single step). Loops scale by their trip interval; round
  /// entries themselves cost nothing beyond their bodies.
  std::vector<Count> steps;
};

/// Interprets every process body over the count/value domains and combines
/// them into per-register summaries (indexed like p.registers). Throws
/// UsageError when an instruction targets a register outside the table.
[[nodiscard]] std::vector<RegisterSummary> summarize(const ProtocolIR& p);

/// Like `summarize`, but also derives channel traffic, off-topology sends,
/// and per-process round counts.
[[nodiscard]] ProtocolSummary summarize_full(const ProtocolIR& p);

}  // namespace bsr::analysis::ir
