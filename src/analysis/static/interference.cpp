#include "analysis/static/interference.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <utility>

namespace bsr::analysis::itf {
namespace {

void add_sorted(std::vector<int>& v, int x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) v.insert(it, x);
}

bool contains(const std::vector<int>& v, int x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// First register in a ∩ b, or -1 (both sorted).
int first_common(const std::vector<int>& a, const std::vector<int>& b) {
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i == *j) return *i;
    if (*i < *j) {
      ++i;
    } else {
      ++j;
    }
  }
  return -1;
}

/// Bits needed for the largest value `v` may store, resolved against the
/// protocol's instantiation (symbolic widths) and register table
/// (relational widths); -1 = no finite bound. Mirrors the abstract
/// interpreter's resolution, conservatively.
int value_max_bits(const ir::ProtocolIR& p, const ir::ValueExpr& v) {
  if (v.unbounded) return -1;
  if (v.symbolic()) {
    const long w = v.sym_width.eval(p.params);
    return w >= 64 ? -1 : static_cast<int>(w);
  }
  if (v.relational()) {
    if (v.rel_base < 0 ||
        v.rel_base >= static_cast<int>(p.registers.size())) {
      return -1;
    }
    const int base = p.registers[v.rel_base].width_bits;
    return base == ir::kUnboundedWidth ? -1 : base + v.rel_slack;
  }
  return ir::bit_width_u64(v.hi);
}

/// May this write record a Width/Bottom/Swmr/WriteOnce event? Mirrors the
/// simulator's do_write checks on the static value set.
bool write_may_violate(const ir::ProtocolIR& p, int pid, int reg,
                       const ir::ValueExpr& value) {
  if (reg < 0 || reg >= static_cast<int>(p.registers.size())) return true;
  const ir::RegisterDecl& decl = p.registers[reg];
  if (decl.writer != -1 && decl.writer != pid) return true;  // SWMR breach
  // Statically we cannot count dynamic writes, so any write to a
  // write-once register may be the second one.
  if (decl.write_once) return true;
  if (decl.width_bits == ir::kUnboundedWidth) return false;
  const int bits = value_max_bits(p, value);
  if (bits < 0 || bits > decl.width_bits) return true;  // width overflow
  if (decl.allows_bottom && bits == decl.width_bits) {
    // The top code point is reserved for ⊥; a full-width value set may
    // reach it unless the interval's upper end provably stays below.
    const std::uint64_t limit =
        (std::uint64_t{1} << decl.width_bits) - 2;
    const bool concrete = !value.unbounded && !value.symbolic() &&
                          !value.relational();
    if (!concrete || value.hi > limit) return true;
  }
  return false;
}

bool send_may_violate(const ir::ProtocolIR& p, int pid, int dst) {
  if (p.channels.empty()) return pid == dst;  // default: no self-loops
  return std::none_of(p.channels.begin(), p.channels.end(),
                      [&](const ir::ChannelDecl& c) {
                        return c.src == pid && c.dst == dst;
                      });
}

std::string reg_name(const std::vector<ir::RegisterDecl>& registers, int r) {
  if (r >= 0 && r < static_cast<int>(registers.size())) {
    return "'" + registers[r].name + "'";
  }
  return "#" + std::to_string(r);
}

std::string op_label(const ir::ProtocolIR& p, int pid, const ir::Instr& op) {
  std::ostringstream os;
  os << "p" << pid << " ";
  const auto group = [&](const std::vector<int>& regs) {
    os << "{";
    for (std::size_t i = 0; i < regs.size(); ++i) {
      if (i > 0) os << ",";
      os << reg_name(p.registers, regs[i]);
    }
    os << "}";
  };
  switch (op.kind) {
    case ir::Instr::Kind::Read:
      os << "read " << reg_name(p.registers, op.reg);
      break;
    case ir::Instr::Kind::Write:
      os << "write " << reg_name(p.registers, op.reg);
      break;
    case ir::Instr::Kind::Snapshot:
      os << "snapshot ";
      group(op.regs);
      break;
    case ir::Instr::Kind::WriteSnapshot:
      os << "write-snapshot " << reg_name(p.registers, op.reg) << " ";
      group(op.regs);
      break;
    case ir::Instr::Kind::Send:
      os << "send -> p" << op.peer;
      break;
    case ir::Instr::Kind::Recv:
      os << "recv <- ";
      if (op.peer < 0) {
        os << "any";
      } else {
        os << "p" << op.peer;
      }
      break;
    case ir::Instr::Kind::Round:
      os << "round";
      break;
    case ir::Instr::Kind::Loop:
      os << "loop";  // not a leaf; never emitted by analyze()
      break;
  }
  return os.str();
}

void flatten(const ir::ProtocolIR& p, int pid,
             const std::vector<ir::Instr>& body, std::vector<OpSite>& out) {
  for (const ir::Instr& op : body) {
    if (op.kind == ir::Instr::Kind::Loop) {
      flatten(p, pid, op.body, out);
      continue;
    }
    out.push_back(OpSite{footprint(p, pid, op), op_label(p, pid, op)});
    if (op.kind == ir::Instr::Kind::Round) flatten(p, pid, op.body, out);
  }
}

}  // namespace

Verdict classify(const Footprint& a, const Footprint& b) {
  Verdict v;
  if (a.pid == b.pid) {
    v.why = Verdict::Why::SameProcess;
    return v;
  }
  if (a.may_violate || b.may_violate) {
    v.why = Verdict::Why::MayViolate;
    return v;
  }
  if (a.crash || b.crash) {
    if (a.crash && b.crash) {
      v.why = Verdict::Why::CrashBudget;
      return v;
    }
    v.independent = true;
    v.why = Verdict::Why::CrashCommutes;
    return v;
  }
  // Register conflicts: a write against any access of the same register.
  int conflict = first_common(a.writes, b.writes);
  if (conflict < 0) conflict = first_common(a.writes, b.reads);
  if (conflict < 0) conflict = first_common(b.writes, a.reads);
  if (conflict >= 0) {
    v.why = Verdict::Why::RegisterConflict;
    v.reg = conflict;
    return v;
  }
  // Channel conflicts: a send to q against a receive by q whose source
  // filter admits the sender (or admits anyone).
  const auto feeds = [](const Footprint& s, const Footprint& r) {
    return s.send_to >= 0 && r.is_recv && r.pid == s.send_to &&
           (r.recv_from < 0 || r.recv_from == s.pid);
  };
  if (feeds(a, b) || feeds(b, a)) {
    v.why = Verdict::Why::ChannelConflict;
    return v;
  }
  v.independent = true;
  v.why = Verdict::Why::DisjointFootprints;
  return v;
}

std::string render_reason(const Verdict& v,
                          const std::vector<ir::RegisterDecl>& registers) {
  switch (v.why) {
    case Verdict::Why::SameProcess:
      return "same process: program order";
    case Verdict::Why::MayViolate:
      return "an operand may record a model violation (order-sensitive)";
    case Verdict::Why::CrashBudget:
      return "both crashes draw on the adversary's crash budget";
    case Verdict::Why::RegisterConflict:
      return "conflicting access to register " + reg_name(registers, v.reg);
    case Verdict::Why::ChannelConflict:
      return "the send feeds the receive's FIFO channel";
    case Verdict::Why::CrashCommutes:
      return "a crash only halts its own process; no shared state touched";
    case Verdict::Why::DisjointFootprints:
      return "disjoint register and channel footprints";
  }
  return "?";
}

Footprint footprint(const ir::ProtocolIR& p, int pid, const ir::Instr& op) {
  Footprint fp;
  fp.pid = pid;
  switch (op.kind) {
    case ir::Instr::Kind::Read:
      add_sorted(fp.reads, op.reg);
      break;
    case ir::Instr::Kind::Write:
      add_sorted(fp.writes, op.reg);
      fp.may_violate = write_may_violate(p, pid, op.reg, op.value);
      break;
    case ir::Instr::Kind::Snapshot:
      for (const int r : op.regs) add_sorted(fp.reads, r);
      break;
    case ir::Instr::Kind::WriteSnapshot:
      add_sorted(fp.writes, op.reg);
      for (const int r : op.regs) add_sorted(fp.reads, r);
      fp.may_violate = write_may_violate(p, pid, op.reg, op.value);
      break;
    case ir::Instr::Kind::Send:
      fp.send_to = op.peer;
      fp.may_violate = send_may_violate(p, pid, op.peer);
      break;
    case ir::Instr::Kind::Recv:
      fp.is_recv = true;
      fp.recv_from = op.peer;
      break;
    case ir::Instr::Kind::Round:
    case ir::Instr::Kind::Loop:
      break;  // control structure: no shared-state footprint of its own
  }
  // Under a declared round budget every step may record a Round event (the
  // event fires inside the resumed body, not at the pending op).
  if (p.max_rounds != ir::kMany) fp.may_violate = true;
  return fp;
}

Report analyze(const ir::ProtocolIR& p) {
  Report rep;
  for (const ir::ProcessIR& proc : p.processes) {
    flatten(p, proc.pid, proc.body, rep.ops);
  }
  const int n = static_cast<int>(rep.ops.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rep.ops[i].fp.pid == rep.ops[j].fp.pid) continue;
      OpPair pr;
      pr.a = i;
      pr.b = j;
      pr.verdict = classify(rep.ops[i].fp, rep.ops[j].fp);
      if (pr.verdict.independent) ++rep.independent;
      rep.pairs.push_back(std::move(pr));
    }
  }
  return rep;
}

std::vector<bool> contended_registers(const Report& r,
                                      std::size_t num_registers) {
  std::vector<bool> contended(num_registers, false);
  const auto mark = [&](const std::vector<int>& ws, const Footprint& other) {
    for (const int w : ws) {
      if (w < 0 || w >= static_cast<int>(num_registers)) continue;
      if (contains(other.writes, w) || contains(other.reads, w)) {
        contended[w] = true;
      }
    }
  };
  for (const OpPair& pr : r.pairs) {
    const Footprint& a = r.ops[pr.a].fp;
    const Footprint& b = r.ops[pr.b].fp;
    mark(a.writes, b);
    mark(b.writes, a);
  }
  return contended;
}

}  // namespace bsr::analysis::itf
