#include "analysis/static/fingerprint.h"

#include <string>

namespace bsr::analysis::ir {

namespace {

// Distinct chain seeds per field family, so e.g. a register index can never
// collide with a channel endpoint by coincidence of encoding.
constexpr std::uint64_t kEnvTag = fp_mix(0x5e21c0de00000001ULL);
constexpr std::uint64_t kRegTag = fp_mix(0x5e21c0de00000002ULL);
constexpr std::uint64_t kChanTag = fp_mix(0x5e21c0de00000003ULL);
constexpr std::uint64_t kInstrTag = fp_mix(0x5e21c0de00000004ULL);
constexpr std::uint64_t kProcTag = fp_mix(0x5e21c0de00000005ULL);
constexpr std::uint64_t kProtoTag = fp_mix(0x5e21c0de00000006ULL);
constexpr std::uint64_t kWidthTag = fp_mix(0x5e21c0de00000007ULL);
constexpr std::uint64_t kValueTag = fp_mix(0x5e21c0de00000008ULL);

[[nodiscard]] std::uint64_t u(long v) noexcept {
  return static_cast<std::uint64_t>(v);
}

std::uint64_t fold(std::uint64_t h, const ValueExpr& v) {
  h = fp_combine(h, kValueTag);
  h = fp_combine(h, v.unbounded ? 1 : 0);
  h = fp_combine(h, v.lo);
  h = fp_combine(h, v.hi);
  h = fp_combine(h, fingerprint(v.sym_width));
  h = fp_combine(h, u(v.rel_base));
  return fp_combine(h, u(v.rel_slack));
}

std::uint64_t fold(std::uint64_t h, const Instr& i) {
  h = fp_combine(h, kInstrTag);
  h = fp_combine(h, static_cast<std::uint64_t>(i.kind));
  h = fp_combine(h, u(i.reg));
  h = fp_combine(h, u(static_cast<long>(i.regs.size())));
  for (const int r : i.regs) h = fp_combine(h, u(r));
  h = fold(h, i.value);
  h = fp_combine(h, u(i.iters.lo));
  h = fp_combine(h, u(i.iters.hi));
  h = fp_combine(h, u(i.peer));
  h = fp_combine(h, i.serve ? 1 : 0);
  h = fp_combine(h, u(static_cast<long>(i.body.size())));
  for (const Instr& b : i.body) h = fold(h, b);
  return h;
}

}  // namespace

std::uint64_t fp_combine_str(std::uint64_t seed, std::string_view s) noexcept {
  // FNV-1a over the bytes, then folded through the chain — the same
  // discipline sim/zobrist.h uses for violation messages.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  seed = fp_combine(seed, u(static_cast<long>(s.size())));
  return fp_combine(seed, h);
}

std::uint64_t fingerprint(const ParamEnv& env) noexcept {
  std::uint64_t h = kEnvTag;
  h = fp_combine(h, u(env.n));
  h = fp_combine(h, u(env.k));
  h = fp_combine(h, u(env.delta));
  h = fp_combine(h, u(env.t));
  return fp_combine(h, u(env.b));
}

std::uint64_t fingerprint(const WidthExpr& w) {
  if (!w.defined()) return kWidthTag;
  std::uint64_t h = fp_combine(kWidthTag, static_cast<std::uint64_t>(w.kind()));
  switch (w.kind()) {
    case WidthExpr::Kind::Const:
      return fp_combine(h, u(w.const_value()));
    case WidthExpr::Kind::Parameter:
      return fp_combine(h, static_cast<std::uint64_t>(w.param_value()));
    case WidthExpr::Kind::CeilLog2:
      return fp_combine(h, fingerprint(w.child_a()));
    case WidthExpr::Kind::Add:
    case WidthExpr::Kind::Mul:
    case WidthExpr::Kind::Max:
      h = fp_combine(h, fingerprint(w.child_a()));
      return fp_combine(h, fingerprint(w.child_b()));
    case WidthExpr::Kind::Undefined:
      break;
  }
  return h;
}

std::uint64_t fingerprint(const ProtocolIR& p) {
  std::uint64_t h = kProtoTag;
  h = fp_combine(h, u(static_cast<long>(p.registers.size())));
  for (const RegisterDecl& r : p.registers) {
    h = fp_combine(h, kRegTag);
    h = fp_combine_str(h, r.name);
    h = fp_combine(h, u(r.writer));
    h = fp_combine(h, u(r.width_bits));
    h = fp_combine(h, r.write_once ? 1 : 0);
    h = fp_combine(h, r.allows_bottom ? 1 : 0);
  }
  h = fp_combine(h, u(static_cast<long>(p.channels.size())));
  for (const ChannelDecl& c : p.channels) {
    h = fp_combine(h, kChanTag);
    h = fp_combine(h, u(c.src));
    h = fp_combine(h, u(c.dst));
    h = fp_combine(h, u(c.width_bits));
  }
  h = fp_combine(h, u(p.max_rounds));
  h = fp_combine(h, fingerprint(p.params));
  h = fp_combine(h, u(static_cast<long>(p.processes.size())));
  for (const ProcessIR& proc : p.processes) {
    h = fp_combine(h, kProcTag);
    h = fp_combine(h, u(proc.pid));
    h = fp_combine(h, u(static_cast<long>(proc.body.size())));
    for (const Instr& i : proc.body) h = fold(h, i);
  }
  return h;
}

std::string fp_hex(std::uint64_t fp) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

}  // namespace bsr::analysis::ir
