// Static interference analysis over ProtocolIR: a sound op-level
// independence relation for the explorer's partial-order reduction.
//
// Two scheduling choices are *independent* when executing them in either
// order from any reachable state yields the same state (including the
// violation log and the per-process result histories), and neither enables
// or disables the other. The relation here is decided purely on op
// *footprints* — the registers an op reads (snapshot members included) and
// writes, the channel endpoints a send/recv touches, whether the op draws
// on the adversary's crash budget, and whether it may record a model
// violation (which is order-sensitive: violation events carry step indices
// and, outside collect mode, abort the execution). Anything the footprints
// cannot prove disjoint is classified *may-interfere*; soundness errs
// toward dependence.
//
// `classify` is the single decision procedure shared by three consumers:
//
//   1. the static pair report behind `bsr lint --mode=interference`
//      (footprints extracted from the reflected IR by `analyze`),
//   2. the explorer's sleep-set reduction (`ExploreOptions::por`;
//      footprints built from pending OpRequests in src/sim/explore.cpp),
//   3. the dynamic commutation oracle (tests/interference_test.cpp), which
//      swaps adjacent independent steps and asserts Zobrist state-hash
//      equality — any mismatch is a soundness bug in this relation.
//
// The rules, and why each is sound (docs/ANALYSIS.md spells out the full
// argument):
//
//   - ops of the same process never commute (program order);
//   - an op that may violate the model never commutes (the violation event
//     records the global step index, and in throwing mode aborts);
//   - two writes, or a write and a read, of the same register conflict —
//     a register read *via snapshot* counts exactly like a named read (the
//     demo-false-independence canary pins this);
//   - a send to q conflicts with any receive by q whose source filter
//     admits the sender (delivery order and the receive's choice set both
//     depend on the send); sends commute with sends (distinct FIFO
//     queues), receives with receives (different receivers drain disjoint
//     queues);
//   - two crashes conflict (both draw on the same crash budget and the
//     budget's exhaustion disables further crash choices); a crash and a
//     step of a *different* process commute (a crash only halts its own
//     process and touches no shared state).
//
// This library is deliberately sim-free (bsr_ir): the simulator links it
// and feeds runtime footprints through the same `classify`.
#pragma once

#include <string>
#include <vector>

#include "analysis/static/ir.h"

namespace bsr::analysis::itf {

/// The shared state one scheduling choice touches. Register sets are
/// sorted and deduplicated. A crash choice has `crash = true` and empty
/// register/channel fields.
struct Footprint {
  int pid = -1;
  bool crash = false;
  std::vector<int> reads;   ///< Registers read; snapshot members included.
  std::vector<int> writes;  ///< Registers written.
  int send_to = -1;         ///< Send destination pid (-1: not a send).
  bool is_recv = false;
  int recv_from = -1;       ///< Receive source filter (-1 = any source).
  /// The op may record a ModelEvent (or throw ModelError): width overflow,
  /// ⊥-escape, SWMR/write-once breach, off-topology send — or any step at
  /// all under a declared round budget (round events fire inside the
  /// resumed body, invisible to the pending op, so the budget makes every
  /// step order-sensitive: a deliberately blunt, sound rule).
  bool may_violate = false;
};

/// Why a pair was classified the way it was. `reason` renders the code as
/// a human-readable justification (register names resolved when the
/// protocol's table is supplied).
struct Verdict {
  bool independent = false;
  enum class Why {
    SameProcess,        ///< Same pid: program order.
    MayViolate,         ///< An operand may record a model violation.
    CrashBudget,        ///< Two crashes draw on one crash budget.
    RegisterConflict,   ///< Write/write or write/read of one register.
    ChannelConflict,    ///< Send feeds the receive's FIFO channel.
    CrashCommutes,      ///< Crash vs another process's step.
    DisjointFootprints, ///< Nothing shared: commutes in every state.
  };
  Why why = Why::DisjointFootprints;
  int reg = -1;  ///< The conflicting register (RegisterConflict only).
};

/// Decides independence from footprints alone. Symmetric in its arguments.
[[nodiscard]] Verdict classify(const Footprint& a, const Footprint& b);

/// Human-readable justification for a verdict. `registers` resolves the
/// conflicting register's name; pass the protocol's table (an empty table
/// falls back to the bare index).
[[nodiscard]] std::string render_reason(
    const Verdict& v, const std::vector<ir::RegisterDecl>& registers);

/// One flattened builder op: its footprint plus a stable rendering such as
/// "p0 write 'A0'" or "p1 snapshot {'A0','A1'}" for reports and goldens.
struct OpSite {
  Footprint fp;
  std::string label;
};

/// One classified cross-process pair; `a`/`b` index `Report::ops`.
struct OpPair {
  int a = -1;
  int b = -1;
  Verdict verdict;
};

/// The full pairwise classification of a protocol's flattened op list.
struct Report {
  std::vector<OpSite> ops;    ///< Ordered by (pid, program position).
  std::vector<OpPair> pairs;  ///< Every cross-process pair, a < b.
  long independent = 0;       ///< How many pairs are independent.
};

/// Footprint of a single IR op (Loop bodies are walked by `analyze`; pass
/// leaf ops here). Exposed for the soundness tests.
[[nodiscard]] Footprint footprint(const ir::ProtocolIR& p, int pid,
                                  const ir::Instr& op);

/// Flattens every process body (loop and round bodies inline, each op once
/// — trip counts do not affect pairwise classification) and classifies
/// every cross-process pair.
[[nodiscard]] Report analyze(const ir::ProtocolIR& p);

/// contended[r] ⇔ some cross-process op pair has a register conflict on r
/// (decided on raw footprints, before the may-violate veto). The
/// `static-interference` lint rule flags bounded registers that are *not*
/// contended: their width claim is vacuous under contention.
[[nodiscard]] std::vector<bool> contended_registers(const Report& r,
                                                    std::size_t num_registers);

}  // namespace bsr::analysis::itf
