// The static tier of `bsr lint`: abstract-interpretation width checking
// over protocol IR, plus cross-validation against the dynamic analyzer.
//
// `analyze_static` consumes a ProtocolSpec's `describe()` IR, derives
// per-register facts with ir::summarize, and checks them against the spec's
// WidthClaim — with zero simulator steps. Its rule ids mirror the dynamic
// analyzer's: `static-width` (declared or derivable width exceeds the
// declaration or the claim), `static-write-once`, `static-ownership`,
// `static-bottom`, `static-dead-register` (warning), and `ir-missing` when
// a spec has no describe hook. `loop-shape` is reflection-specific: the
// spec's body is reflected a second time under perturbed read results
// (proto::ScopedReadPerturbation) and any IR difference means the body's
// structure depends on data the solo reflection cannot see.
//
// `cross_validate` makes each tier the other's oracle: the static facts are
// a sound over-approximation of every execution, so any dynamic observation
// exceeding them — or any dynamic model violation with no static
// counterpart — is an internal error (`static-dynamic-disagreement`), not a
// protocol finding. Static slack in the other direction (derived bounds the
// explorer never reaches) is expected and never flagged.
//
// This lives in bsr_analysis (not bsr_ir): it needs the claims registry,
// which sits above core in the layering.
#pragma once

#include <vector>

#include "analysis/claims.h"
#include "analysis/diag.h"

namespace bsr::analysis {

/// Runs the static rule set over `spec.describe()`. The returned report has
/// mode = Mode::Static and executions = 0. A spec without a describe hook
/// yields a single `ir-missing` error.
[[nodiscard]] ProtocolReport analyze_static(const ProtocolSpec& spec);

/// Compares a static and a dynamic report of the same spec and returns one
/// `static-dynamic-disagreement` diagnostic per inconsistency (empty when
/// the tiers agree, or when the static tier reported `ir-missing`).
[[nodiscard]] std::vector<Diagnostic> cross_validate(
    const ProtocolSpec& spec, const ProtocolReport& stat,
    const ProtocolReport& dyn);

}  // namespace bsr::analysis
