// The static tier of `bsr lint`: abstract-interpretation width checking
// over protocol IR, plus cross-validation against the dynamic analyzer.
//
// `analyze_static` consumes a ProtocolSpec's `describe()` IR, derives
// per-register facts with ir::summarize, and checks them against the spec's
// WidthClaim — with zero simulator steps. Its rule ids mirror the dynamic
// analyzer's: `static-width` (declared or derivable width exceeds the
// declaration or the claim), `static-write-once`, `static-ownership`,
// `static-bottom`, `static-dead-register` (warning), and `ir-missing` when
// a spec has no describe hook. `loop-shape` is reflection-specific: the
// spec's body is reflected a second time under perturbed read results
// (proto::ScopedReadPerturbation) and any IR difference means the body's
// structure depends on data the solo reflection cannot see.
//
// `cross_validate` makes each tier the other's oracle: the static facts are
// a sound over-approximation of every execution, so any dynamic observation
// exceeding them — or any dynamic model violation with no static
// counterpart — is an internal error (`static-dynamic-disagreement`), not a
// protocol finding. Static slack in the other direction (derived bounds the
// explorer never reaches) is expected and never flagged.
//
// `analyze_symbolic` is the third tier (`bsr lint --mode=symbolic`): the
// full static rule set plus the symbolic width prover (static/prover.h). It
// extracts one proof obligation per bounded register — `lhs ≤ budget` with
// both sides WidthExprs over the model parameters — and asks the prover to
// decide it for *all* assumption-satisfying ParamEnvs, not just the spec's
// own instantiation. The verdict lands in three places: per-register
// (`RegisterAudit::verified`), per-protocol (`ProtocolReport::
// claim_verified`), and — for refuted obligations — as a new
// `static-width-all-n` error carrying the concrete witness environment.
//
// This lives in bsr_analysis (not bsr_ir): it needs the claims registry,
// which sits above core in the layering.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/claims.h"
#include "analysis/diag.h"
#include "analysis/static/prover.h"

namespace bsr::analysis {

/// Runs the static rule set over `spec.describe()`. The returned report has
/// mode = Mode::Static and executions = 0. A spec without a describe hook
/// yields a single `ir-missing` error.
[[nodiscard]] ProtocolReport analyze_static(const ProtocolSpec& spec);

/// One `lhs ≤ budget` proof obligation the prover must discharge for every
/// assumption-satisfying ParamEnv.
struct WidthObligation {
  int reg = -1;           ///< Register index the obligation is about.
  std::string reg_name;
  /// What the lhs measures: "declared width" (the register's declaration,
  /// only when the claim is a plain constant — a declaration under a
  /// symbolic claim is an instantiation artifact and is checked per-env
  /// instead) or "derived write width" (the IR's symbolic or interval
  /// write summary).
  std::string what;
  ir::WidthExpr lhs;
  ir::WidthExpr budget;   ///< The claim: symbolic_bits or the constant.
};

/// Extracts the spec's obligation set from its IR and register summaries
/// (one entry per check the prover should quantify over all parameters).
[[nodiscard]] std::vector<WidthObligation> width_obligations(
    const ProtocolSpec& spec, const ir::ProtocolIR& p,
    const std::vector<ir::RegisterSummary>& sums);

/// The prover's verdict over a spec's whole obligation set. Status strings
/// are canonical: "all params" (every obligation proved — including the
/// vacuous case of no obligations), "n <= N" (some obligation only closed
/// by the cutoff sweep over the assumption grid), "refuted" (some
/// obligation has a witness environment violating it).
struct ClaimVerification {
  std::string status;                        ///< Aggregate, see above.
  std::map<int, std::string> per_register;   ///< reg index → status.
  /// One `static-width-all-n` error per refuted obligation, witness env
  /// and evaluated widths in the message.
  std::vector<Diagnostic> refutations;
};

/// Runs the symbolic prover over the spec's obligations. The overload
/// without IR re-reflects via `spec.describe()` (requires the hook).
[[nodiscard]] ClaimVerification verify_claims(
    const ProtocolSpec& spec, const ir::ProtocolIR& p,
    const std::vector<ir::RegisterSummary>& sums);
[[nodiscard]] ClaimVerification verify_claims(const ProtocolSpec& spec);

/// The symbolic tier: everything `analyze_static` checks, plus all-params
/// claim verification. The returned report has mode = Mode::Symbolic;
/// refuted obligations appear as `static-width-all-n` errors (so the lint
/// exit-code contract is unchanged: refutation ⇒ exit 1).
[[nodiscard]] ProtocolReport analyze_symbolic(const ProtocolSpec& spec);

/// The interference tier (`bsr lint --mode=interference`): runs the static
/// op-footprint independence analysis (analysis/static/interference.h) over
/// the spec's reflected IR and reports every cross-process op pair with its
/// verdict and justification. The returned report has mode =
/// Mode::Interference. One rule fires here: `static-interference` (warning)
/// flags each bounded, written register that no cross-process pair ever
/// conflicts on — its width claim is vacuous under contention, so either
/// the bound is decorative or the registry misdeclares who touches it.
/// A spec without a describe hook yields a single `ir-missing` error.
/// `max_pairs` caps the rendered pair detail (`--max-pairs`; 0 = unlimited;
/// the totals always cover the full relation).
[[nodiscard]] ProtocolReport analyze_interference(
    const ProtocolSpec& spec, std::size_t max_pairs = kMaxInterferenceDetail);

/// One `derived bound ≤ step budget` proof obligation: a process whose
/// symbolic step bound is finite, under a spec that states a finite step
/// claim. Serve-exempt processes and claimless specs contribute none.
struct StepObligation {
  int pid = -1;
  ir::WidthExpr bound;    ///< The engine's derived per-process bound.
  ir::WidthExpr budget;   ///< The spec's step claim.
};

/// Extracts the spec's step obligations from its IR (one per process with
/// a finite derived bound, when `spec.step_claim.max_steps` is defined).
[[nodiscard]] std::vector<StepObligation> step_obligations(
    const ProtocolSpec& spec, const ir::ProtocolIR& p);

/// The prover's verdict over a spec's step obligations; same status
/// strings as ClaimVerification ("" when the spec makes no finite step
/// claim). Refutations carry the `static-step-bound` rule with a witness
/// environment.
struct StepVerification {
  std::string status;
  std::map<int, std::string> per_process;  ///< pid → status.
  std::vector<Diagnostic> refutations;
};

[[nodiscard]] StepVerification verify_step_claims(const ProtocolSpec& spec,
                                                  const ir::ProtocolIR& p);

/// The static half of the step tier (`bsr lint --mode=steps`): derives
/// per-process symbolic step bounds (static/steps.h), raises one
/// `static-termination` error per undeclared [0, ∞] loop, proves every
/// finite bound against the spec's step claim for all parameter values
/// (`static-step-bound` on refutation), and fills one StepAudit row per
/// process with `observed = -1`. The lint driver merges the dynamic
/// tier's observed per-process max step counts into those rows and calls
/// `cross_validate_steps`. The returned report has mode = Mode::Steps.
[[nodiscard]] ProtocolReport analyze_steps(const ProtocolSpec& spec);

/// Checks a merged step report's observation against its bounds: a
/// dynamically observed per-process max step count exceeding the symbolic
/// bound evaluated at the spec's ParamEnv is an internal error
/// (`static-dynamic-disagreement`, exit 2) — exhaustive exploration
/// visits every schedule, so the static bound cannot be undercut by a
/// sound engine. Rows without a finite bound or without an observation
/// are skipped.
[[nodiscard]] std::vector<Diagnostic> cross_validate_steps(
    const ProtocolSpec& spec, const ProtocolReport& rep);

/// Compares a static and a dynamic report of the same spec and returns one
/// `static-dynamic-disagreement` diagnostic per inconsistency (empty when
/// the tiers agree, or when the static tier reported `ir-missing`).
[[nodiscard]] std::vector<Diagnostic> cross_validate(
    const ProtocolSpec& spec, const ProtocolReport& stat,
    const ProtocolReport& dyn);

}  // namespace bsr::analysis
