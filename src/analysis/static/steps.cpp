#include "analysis/static/steps.h"

#include <limits>
#include <utility>

namespace bsr::analysis::ir {

namespace {

constexpr long kSatMax = std::numeric_limits<long>::max();

long sat_add_long(long a, long b) {
  if (a > kSatMax - b) return kSatMax;
  return a + b;
}

long sat_mul_long(long a, long b) {
  if (a != 0 && b > kSatMax / a) return kSatMax;
  return a * b;
}

/// `a + b` with constant folding and 0-identities, so bounds built from
/// concrete trip counts render as single constants rather than op chains.
WidthExpr sym_add(const WidthExpr& a, const WidthExpr& b) {
  if (!a.defined()) return b;
  if (!b.defined()) return a;
  if (a.kind() == WidthExpr::Kind::Const &&
      b.kind() == WidthExpr::Kind::Const) {
    return WidthExpr::constant(sat_add_long(a.const_value(), b.const_value()));
  }
  if (a.kind() == WidthExpr::Kind::Const && a.const_value() == 0) return b;
  if (b.kind() == WidthExpr::Kind::Const && b.const_value() == 0) return a;
  return WidthExpr::add(a, b);
}

/// `a · c` for a concrete trip count c, with constant folding and the
/// 0/1 identities.
WidthExpr sym_scale(const WidthExpr& a, long c) {
  if (!a.defined() || c == 0) return WidthExpr::constant(0);
  if (c == 1) return a;
  if (a.kind() == WidthExpr::Kind::Const) {
    return WidthExpr::constant(sat_mul_long(a.const_value(), c));
  }
  return WidthExpr::mul(a, WidthExpr::constant(c));
}

/// One subtree's contribution to the fold.
struct Fold {
  WidthExpr steps = WidthExpr::constant(0);  ///< Meaningful iff finite.
  bool finite = true;
  bool serve = false;
  Count rounds = Count::exactly(0);  ///< Rounds completed by the subtree.
  std::vector<std::string> nonterminating;
};

void absorb(Fold& acc, Fold&& f) {
  acc.steps = acc.finite && f.finite ? sym_add(acc.steps, f.steps)
                                     : WidthExpr();
  acc.finite = acc.finite && f.finite;
  acc.serve = acc.serve || f.serve;
  acc.rounds = acc.rounds.seq(f.rounds);
  for (std::string& s : f.nonterminating) {
    acc.nonterminating.push_back(std::move(s));
  }
}

Fold fold_body(const std::vector<Instr>& body, long max_rounds);

Fold fold_instr(const Instr& i, long max_rounds) {
  switch (i.kind) {
    case Instr::Kind::Read:
    case Instr::Kind::Write:
    case Instr::Kind::Snapshot:
    case Instr::Kind::WriteSnapshot:
    case Instr::Kind::Send:
    case Instr::Kind::Recv: {
      Fold f;
      f.steps = WidthExpr::constant(1);
      return f;
    }
    case Instr::Kind::Round: {
      Fold f = fold_body(i.body, max_rounds);
      f.rounds = f.rounds.seq(Count::exactly(1));
      return f;
    }
    case Instr::Kind::Loop: {
      Fold inner = fold_body(i.body, max_rounds);
      Fold f;
      f.serve = inner.serve;
      f.nonterminating = std::move(inner.nonterminating);
      f.rounds = inner.rounds.times(i.iters);
      if (!i.iters.unbounded()) {
        f.finite = inner.finite;
        f.steps = f.finite ? sym_scale(inner.steps, i.iters.hi) : WidthExpr();
        return f;
      }
      // A [0, ∞] loop: classify it. A declared round budget caps the trip
      // count when every iteration completes at least one round; a serve
      // loop is exempt by declaration; anything else is a termination
      // finding.
      if (max_rounds != kMany && inner.rounds.lo >= 1) {
        f.finite = inner.finite;
        f.steps = f.finite ? sym_scale(inner.steps, max_rounds) : WidthExpr();
        return f;
      }
      f.finite = false;
      f.steps = WidthExpr();
      if (i.serve) {
        f.serve = true;
      } else {
        f.nonterminating.push_back(render(i));
      }
      return f;
    }
  }
  return {};
}

Fold fold_body(const std::vector<Instr>& body, long max_rounds) {
  Fold acc;
  for (const Instr& i : body) absorb(acc, fold_instr(i, max_rounds));
  return acc;
}

}  // namespace

StepReport step_bounds(const ProtocolIR& p) {
  StepReport report;
  report.processes.reserve(p.processes.size());
  for (const ProcessIR& proc : p.processes) {
    Fold f = fold_body(proc.body, p.max_rounds);
    ProcessStepBound b;
    b.pid = proc.pid;
    b.finite = f.finite;
    b.serve = f.serve;
    b.bound = f.finite ? f.steps : WidthExpr();
    b.nonterminating = std::move(f.nonterminating);
    report.processes.push_back(std::move(b));
  }
  return report;
}

}  // namespace bsr::analysis::ir
