#include "analysis/lint.h"

#include <exception>
#include <memory>
#include <ostream>

#include "analysis/analyzer.h"
#include "analysis/claims.h"
#include "analysis/diag.h"
#include "analysis/static/checker.h"

namespace bsr::analysis {

namespace {

constexpr const char* kUsage =
    R"(usage: bsr lint [options]

Runs the model-conformance analyzer (docs/ANALYSIS.md) over the built-in
protocol registry: register-width claims, SWMR/write-once/bottom discipline,
dead registers, and reflection stability (the static tier re-reflects each
builder body under perturbed reads and flags shape drift as `loop-shape`).

options:
  --protocol NAME[,NAME...]   analyze only the named protocols; default is
                              every built-in protocol except the
                              intentionally-misdeclared demos
  --mode dynamic|static|symbolic|both|interference|steps
                              dynamic: explore executions and audit the
                              observed behavior (default); static: abstract
                              interpretation over each protocol's IR, zero
                              simulator steps; symbolic: the static tier
                              plus the width prover — every claim is
                              verified for all parameter valuations
                              (all params / n <= cutoff / refuted with a
                              witness environment); both: run dynamic and
                              static and cross-validate them;
                              interference: classify every cross-process op
                              pair of the IR as independent or
                              may-interfere (the relation `bsr explore
                              --por` consumes) and warn on bounded
                              registers no pair conflicts on
                              (static-interference); steps: derive
                              per-process symbolic step bounds from the IR
                              (static-termination on undeclared [0, ∞]
                              loops), prove them against the step claims
                              for all parameter valuations
                              (static-step-bound), and cross-validate the
                              bounds against the max steps the explorer
                              observes
  --static                    shorthand for --mode static
  --max-pairs N               interference mode: cap on rendered pair
                              detail rows per protocol (default 2048;
                              0 = unlimited; totals always cover the full
                              relation)
  --json                      emit one JSON document instead of text
  --list                      list the protocol registry (with each claim's
                              verification status) and exit
  --help                      print this help and exit

exit codes:
  0  no error-severity diagnostics (warnings allowed)
  1  at least one error-severity diagnostic (symbolic mode: includes
     claims refuted for some parameter valuation, witness in the message;
     steps mode: includes unproven [0, ∞] loops and refuted step claims)
  2  usage or internal failure (unknown protocol, exploration bounds
     exceeded, static/dynamic disagreement — including an observed step
     count exceeding the symbolic bound)
)";

int run_lint_impl(const LintOptions& opts, std::ostream& out,
                  std::ostream& err) {
  if (opts.help) {
    out << kUsage;
    return 0;
  }
  const std::vector<ProtocolSpec>& registry =
      opts.registry != nullptr ? *opts.registry : builtin_protocols();
  if (opts.list) {
    for (const ProtocolSpec& s : registry) {
      out << s.name << (s.demo ? " (demo)" : "") << ": " << s.description
          << " [" << s.claim.source << "]";
      // Claim-verification status: what the symbolic prover can say about
      // this spec's width claims ("per-env only" when it has no IR to
      // reason over, so only per-instantiation checks apply).
      std::string status = "per-env only";
      if (s.describe) {
        try {
          status = "verified: " + verify_claims(s).status;
        } catch (const std::exception&) {
          status = "per-env only";
        }
      }
      out << " — " << status;
      // Step-bound status: the prover's verdict on the step claim, or why
      // there is nothing to prove (serve pumps, claimless specs, unproven
      // loops).
      if (s.describe) {
        try {
          const ProtocolReport sr = analyze_steps(s);
          std::string steps_status = sr.step_verified;
          if (steps_status.empty()) {
            bool serve = false;
            for (const StepAudit& a : sr.steps) serve = serve || a.serve;
            steps_status = sr.errors() > 0 ? "unproven"
                           : serve        ? "serve (no finite bound)"
                                          : "no claim";
          }
          out << ", steps: " << steps_status;
        } catch (const std::exception&) {
          // leave the column off: the spec cannot be reflected
        }
      }
      out << "\n";
    }
    return 0;
  }

  std::vector<const ProtocolSpec*> specs;
  if (opts.protocols.empty()) {
    for (const ProtocolSpec& s : registry) {
      if (!s.demo) specs.push_back(&s);
    }
  } else {
    for (const std::string& name : opts.protocols) {
      const ProtocolSpec* s = nullptr;
      for (const ProtocolSpec& known : registry) {
        if (known.name == name) {
          s = &known;
          break;
        }
      }
      if (s == nullptr) {
        err << "bsr lint: no-such-protocol: unknown protocol '" << name
            << "' (see `bsr lint --list`)\nregistered protocols:";
        for (const ProtocolSpec& known : registry) {
          err << " " << known.name;
        }
        err << "\n";
        return 2;
      }
      specs.push_back(s);
    }
  }

  std::unique_ptr<DiagnosticSink> sink;
  if (opts.json) {
    sink = std::make_unique<JsonSink>(out);
  } else {
    sink = std::make_unique<TextSink>(out);
  }

  int errors = 0;
  int warnings = 0;
  long disagreements = 0;
  for (const ProtocolSpec* spec : specs) {
    try {
      ProtocolReport rep;
      if (opts.mode == LintMode::Static) {
        rep = analyze_static(*spec);
      } else if (opts.mode == LintMode::Symbolic) {
        rep = analyze_symbolic(*spec);
      } else if (opts.mode == LintMode::Interference) {
        rep = analyze_interference(*spec, opts.max_pairs);
      } else if (opts.mode == LintMode::Steps) {
        // Steps: the static engine derives and proves the bounds; the
        // dynamic tier supplies the observed per-process maxima the
        // cross-validator checks them against. Width findings stay in the
        // per-env tiers — only step findings surface here.
        rep = analyze_steps(*spec);
        const ProtocolReport dyn = analyze_protocol(*spec);
        rep.sampled = dyn.sampled;
        rep.executions = dyn.executions;
        rep.max_bounded_bits_used = dyn.max_bounded_bits_used;
        for (StepAudit& a : rep.steps) {
          const auto pid = static_cast<std::size_t>(a.pid);
          if (pid < dyn.observed_steps.size()) {
            a.observed = dyn.observed_steps[pid];
          }
        }
        std::vector<Diagnostic> dis = cross_validate_steps(*spec, rep);
        disagreements += static_cast<long>(dis.size());
        for (Diagnostic& d : dis) rep.diagnostics.push_back(std::move(d));
      } else if (opts.mode == LintMode::Dynamic) {
        rep = analyze_protocol(*spec);
      } else {
        // Both: the dynamic report is the base; the static tier's findings
        // and any cross-validation disagreements are appended to it.
        const ProtocolReport stat = analyze_static(*spec);
        rep = analyze_protocol(*spec);
        rep.mode = Mode::Both;
        std::vector<Diagnostic> dis = cross_validate(*spec, stat, rep);
        disagreements += static_cast<long>(dis.size());
        for (const Diagnostic& d : stat.diagnostics) {
          rep.diagnostics.push_back(d);
        }
        for (Diagnostic& d : dis) rep.diagnostics.push_back(std::move(d));
      }
      errors += rep.errors();
      warnings += rep.warnings();
      sink->report(rep);
    } catch (const std::exception& e) {
      err << "bsr lint: " << spec->name << ": " << e.what() << "\n";
      return 2;
    }
  }
  sink->close(errors, warnings);
  if (disagreements > 0) {
    err << "bsr lint: " << disagreements
        << " static/dynamic disagreement(s) — the two analyzers are each "
           "other's oracle, so this is an internal error, not a protocol "
           "finding\n";
    return 2;
  }
  return errors > 0 ? 1 : 0;
}

}  // namespace

int run_lint(const LintOptions& opts, std::ostream& out, std::ostream& err) {
  // Registry construction itself runs precomputation (BMZ plans, Algorithm
  // 6 path materialization) through the explorer, so even resolving a
  // protocol name can throw (e.g. a malformed BSR_EXPLORE_THREADS): treat
  // anything escaping the driver as an operational failure, not a lint
  // verdict.
  try {
    return run_lint_impl(opts, out, err);
  } catch (const std::exception& e) {
    err << "bsr lint: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace bsr::analysis
