#include "analysis/lint.h"

#include <exception>
#include <memory>
#include <ostream>

#include "analysis/analyzer.h"
#include "analysis/claims.h"
#include "analysis/diag.h"

namespace bsr::analysis {

namespace {

int run_lint_impl(const LintOptions& opts, std::ostream& out,
                  std::ostream& err) {
  if (opts.list) {
    for (const ProtocolSpec& s : builtin_protocols()) {
      out << s.name << (s.demo ? " (demo)" : "") << ": " << s.description
          << " [" << s.claim.source << "]\n";
    }
    return 0;
  }

  std::vector<const ProtocolSpec*> specs;
  if (opts.protocols.empty()) {
    for (const ProtocolSpec& s : builtin_protocols()) {
      if (!s.demo) specs.push_back(&s);
    }
  } else {
    for (const std::string& name : opts.protocols) {
      const ProtocolSpec* s = find_protocol(name);
      if (s == nullptr) {
        err << "bsr lint: unknown protocol '" << name
            << "' (see `bsr lint --list`)\n";
        return 2;
      }
      specs.push_back(s);
    }
  }

  std::unique_ptr<DiagnosticSink> sink;
  if (opts.json) {
    sink = std::make_unique<JsonSink>(out);
  } else {
    sink = std::make_unique<TextSink>(out);
  }

  int errors = 0;
  int warnings = 0;
  for (const ProtocolSpec* spec : specs) {
    try {
      const ProtocolReport rep = analyze_protocol(*spec);
      errors += rep.errors();
      warnings += rep.warnings();
      sink->report(rep);
    } catch (const std::exception& e) {
      err << "bsr lint: " << spec->name << ": " << e.what() << "\n";
      return 2;
    }
  }
  sink->close(errors, warnings);
  return errors > 0 ? 1 : 0;
}

}  // namespace

int run_lint(const LintOptions& opts, std::ostream& out, std::ostream& err) {
  // Registry construction itself runs precomputation (BMZ plans, Algorithm
  // 6 path materialization) through the explorer, so even resolving a
  // protocol name can throw (e.g. a malformed BSR_EXPLORE_THREADS): treat
  // anything escaping the driver as an operational failure, not a lint
  // verdict.
  try {
    return run_lint_impl(opts, out, err);
  } catch (const std::exception& e) {
    err << "bsr lint: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace bsr::analysis
