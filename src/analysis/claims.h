// The paper-claims table: per-algorithm register-width budgets, executable.
//
// Every theorem reproduced by this library is a *quantitative* claim about
// register width — "1-bit registers" (Theorems 1.2, 1.4), "3 bits per
// process" (§5.2.3), "3(t+1) bits" (Theorem 1.3), "6-bit registers"
// (Theorem 8.1). This module encodes those budgets as WidthClaims attached
// to runnable ProtocolSpecs, so the analyzer (analyzer.h) can fail when an
// implementation declares or actually uses more bits than its theorem
// grants. The registry is what `bsr lint` iterates over.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/static/ir.h"
#include "sim/explore.h"

namespace bsr::analysis {

/// The width budget a paper result grants an algorithm.
struct WidthClaim {
  /// Maximum declared (and observed) width of any bounded register.
  /// 0 means "uses no bounded registers at all" (the unbounded baseline).
  int max_register_bits = 0;
  /// Total bounded bits per process (sum of the declared widths of the
  /// bounded registers each process owns), when the paper states a
  /// per-process budget (e.g. §5.2.3's "3 bits per process"). Write-once
  /// *unbounded* input registers are outside the budget by the model's own
  /// accounting (§2) and are naturally excluded: only bounded widths sum.
  std::optional<int> per_process_bits;
  /// Paper grounding, e.g. "Theorem 1.2 / §5.2.3".
  std::string source;
  /// Optional symbolic form of max_register_bits (e.g. ⌈log₂ k⌉ + Δ). When
  /// defined, both tiers budget against its evaluation at the spec's
  /// ParamEnv and flag any disagreement with max_register_bits as a
  /// claims-table bug.
  ir::WidthExpr symbolic_bits;

  /// The per-register budget at `params`: symbolic_bits evaluated there
  /// when defined (clamped to [0, 63]), else max_register_bits.
  [[nodiscard]] int effective_bits(const ir::ParamEnv& params) const;
};

/// The step budget a spec claims: a symbolic upper bound on atomic steps
/// per process per complete execution (the wait-freedom axis of the same
/// theorems the width claims pin). An undefined `max_steps` means the spec
/// makes no finite step claim — the §6 serve-forever stacks, and demos
/// that exist to exercise other rules.
struct StepClaim {
  /// Per-process step budget over n, k, Δ, t, b; undefined = no claim.
  ir::WidthExpr max_steps;
  /// Paper grounding, e.g. "Algorithm 1: 4 ops/execution".
  std::string source;
};

/// A runnable, auditable protocol: how to build it, how to run it, and what
/// the paper claims about it.
struct ProtocolSpec {
  std::string name;         ///< Registry key (`bsr lint --protocol <name>`).
  std::string description;
  WidthClaim claim;
  /// Step budget for `bsr lint --mode=steps`; may be claimless (see
  /// StepClaim). The checker proves the derived symbolic bound ≤ this
  /// budget for all parameter values.
  StepClaim step_claim;
  /// Builds a fresh fully-spawned Sim. Must be deterministic — the analyzer
  /// may call it several times (and, under the parallel explorer, from
  /// several threads), and cross-run aggregation assumes identical register
  /// tables.
  sim::Explorer::Factory factory;
  /// Exploration bounds (used when sample_runner is empty).
  sim::ExploreOptions explore;
  /// Static IR of the protocol this spec's factory builds, for the abstract
  /// width checker (`bsr lint --static`). Must declare the same register
  /// table as the factory's Sim — `bsr lint --mode both` cross-validates
  /// the two and treats any disagreement as an internal error. Empty:
  /// the static tier reports `ir-missing`.
  std::function<ir::ProtocolIR()> describe;
  /// Non-empty for protocols whose processes serve forever (the §6 stack):
  /// instead of exhaustive exploration, the analyzer runs this once per
  /// seed; it must drive the Sim until the protocol's notion of "done".
  std::function<void(sim::Sim&, std::uint64_t seed)> sample_runner;
  int sample_seeds = 3;     ///< Seeds 1..sample_seeds when sampling.
  /// The parameter instantiation (n, k, Δ, t, b) this spec's factory
  /// builds. Symbolic claim widths and symbolic IR writes are evaluated
  /// against it.
  ir::ParamEnv params;
  /// Demo specs are intentionally non-conforming (linter self-tests); they
  /// are excluded from `bsr lint`'s default "all protocols" sweep and only
  /// run when named explicitly.
  bool demo = false;
};

/// The built-in registry: every implemented algorithm with a width theorem,
/// plus the intentionally-misdeclared "demo-misdeclared" spec the linter
/// must flag. Built once, on first use.
[[nodiscard]] const std::vector<ProtocolSpec>& builtin_protocols();

/// Looks up a spec by name (demos included); nullptr if unknown.
[[nodiscard]] const ProtocolSpec* find_protocol(const std::string& name);

}  // namespace bsr::analysis
