#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/static/checker.h"
#include "sim/explore.h"
#include "sim/sim.h"

namespace bsr::analysis {
namespace {

const char* rule_for(sim::ModelEvent::Kind k) {
  switch (k) {
    case sim::ModelEvent::Kind::Swmr: return "swmr-ownership";
    case sim::ModelEvent::Kind::Width: return "width-overflow";
    case sim::ModelEvent::Kind::WriteOnce: return "write-once";
    case sim::ModelEvent::Kind::Bottom: return "bottom-escape";
    case sim::ModelEvent::Kind::Topology: return "topology";
    case sim::ModelEvent::Kind::Atomicity: return "step-atomicity";
    case sim::ModelEvent::Kind::Round: return "round-bound";
  }
  return "?";
}

/// Cross-execution facts about one register.
struct RegAgg {
  bool read_ever = false;  ///< Read on at least one explored schedule.
  int max_bits = 0;        ///< Max max_bits_written over all schedules.
  long max_writes = 0;     ///< Max writes within one execution.
};

/// Registers whose per-step width tracking the explorer may skip because
/// the static tier already proves them in-bounds: declared bounded, the IR
/// derives strictly fewer bits than declared (so neither width-overflow nor
/// bottom-escape can fire — values below 2^(b−1) never reach the ⊥ code
/// point), and no static diagnostic touches the register. Opt-in via
/// BSR_EXPLORE_STATIC_PREFILTER; any analysis failure disables the filter.
std::vector<bool> prefilter_mask(const ProtocolSpec& spec, int nregs) {
  std::vector<bool> mask(static_cast<std::size_t>(nregs), false);
  if (std::getenv("BSR_EXPLORE_STATIC_PREFILTER") == nullptr) return mask;
  if (!spec.describe) return mask;
  try {
    const ProtocolReport stat = analyze_static(spec);
    if (static_cast<int>(stat.registers.size()) != nregs) return mask;
    for (const RegisterAudit& a : stat.registers) {
      if (a.declared_bits < 0) continue;  // unbounded: nothing tracked anyway
      if (a.max_bits < 0 || a.max_bits >= a.declared_bits) continue;
      bool flagged = false;
      for (const Diagnostic& d : stat.diagnostics) {
        if (d.reg == a.reg) {
          flagged = true;
          break;
        }
      }
      if (!flagged) mask[static_cast<std::size_t>(a.reg)] = true;
    }
  } catch (...) {
    return std::vector<bool>(static_cast<std::size_t>(nregs), false);
  }
  return mask;
}

}  // namespace

ProtocolReport analyze_protocol(const ProtocolSpec& spec) {
  ProtocolReport rep;
  rep.name = spec.name;
  rep.claim_source = spec.claim.source;
  rep.claimed_register_bits = spec.claim.max_register_bits;
  rep.claimed_bits_expr = spec.claim.symbolic_bits.render();
  rep.sampled = static_cast<bool>(spec.sample_runner);

  const auto add = [&rep, &spec](Diagnostic d) {
    d.protocol = spec.name;
    rep.diagnostics.push_back(std::move(d));
  };

  // The effective per-register budget: a symbolic claim evaluated at the
  // spec's instantiation when one is stated, else the tabulated constant.
  const int budget = spec.claim.effective_bits(spec.params);
  if (spec.claim.symbolic_bits.defined() &&
      budget != spec.claim.max_register_bits) {
    std::ostringstream msg;
    msg << "symbolic claim " << spec.claim.symbolic_bits.render()
        << " evaluates to " << budget << " bits at (n=" << spec.params.n
        << ", k=" << spec.params.k << ", delta=" << spec.params.delta
        << ", t=" << spec.params.t << ", b=" << spec.params.b
        << ") but the claims table states " << spec.claim.max_register_bits;
    Diagnostic d;
    d.rule = "claim-width";
    d.message = msg.str();
    add(std::move(d));
  }

  // --- Static layer: audit the declared register table against the claim.
  // Factories are deterministic, so one probe Sim represents them all.
  const auto probe = spec.factory();
  const int nregs = probe->num_registers();
  std::vector<sim::Register> decls;
  decls.reserve(static_cast<std::size_t>(nregs));
  for (int r = 0; r < nregs; ++r) decls.push_back(probe->register_info(r));

  for (int r = 0; r < nregs; ++r) {
    const sim::Register& reg = decls[static_cast<std::size_t>(r)];
    if (reg.width_bits == sim::kUnbounded) continue;
    std::ostringstream msg;
    if (budget == 0) {
      msg << "claim [" << spec.claim.source
          << "] admits no bounded registers, but '" << reg.name
          << "' declares " << reg.width_bits << " bits";
    } else if (reg.width_bits > budget) {
      msg << "register '" << reg.name << "' declares " << reg.width_bits
          << " bits; the claim [" << spec.claim.source << "] grants at most "
          << budget;
    } else {
      continue;
    }
    Diagnostic d;
    d.rule = "claim-width";
    d.pid = reg.writer;
    d.reg = r;
    d.reg_name = reg.name;
    d.message = msg.str();
    add(std::move(d));
  }
  if (spec.claim.per_process_bits.has_value()) {
    std::map<sim::Pid, int> per_pid;
    for (const sim::Register& reg : decls) {
      if (reg.width_bits != sim::kUnbounded && reg.writer >= 0) {
        per_pid[reg.writer] += reg.width_bits;
      }
    }
    for (const auto& [pid, bits] : per_pid) {
      if (bits <= *spec.claim.per_process_bits) continue;
      std::ostringstream msg;
      msg << "process " << pid << " owns " << bits
          << " bounded bits across its registers; the claim ["
          << spec.claim.source << "] grants " << *spec.claim.per_process_bits
          << " per process";
      Diagnostic d;
      d.rule = "claim-width";
      d.pid = pid;
      d.message = msg.str();
      add(std::move(d));
    }
  }

  // --- Dynamic layer: run every schedule (or seeded samples) in collect
  // mode and harvest the per-path violation log. Identical violations
  // reached along many schedules are reported once, tagged with the first
  // schedule that exhibited them.
  std::vector<RegAgg> agg(static_cast<std::size_t>(nregs));
  std::set<std::string> seen;
  int max_used = 0;
  std::vector<long> steps_seen(static_cast<std::size_t>(probe->n()), 0);

  const auto harvest = [&](sim::Sim& sim, const std::string& fingerprint) {
    for (const sim::ModelEvent& e : sim.model_violations()) {
      // The same violating operation fires at a different step offset on
      // every interleaving, so the step index stays out of the dedupe key:
      // one diagnostic per distinct violation, tagged with the first
      // schedule (and step) that exhibited it.
      std::ostringstream key;
      key << rule_for(e.kind) << '|' << e.pid << '|' << e.reg << '|'
          << e.message;
      if (!seen.insert(key.str()).second) continue;
      Diagnostic d;
      d.rule = rule_for(e.kind);
      d.pid = e.pid;
      d.reg = e.reg;
      if (e.reg >= 0 && e.reg < nregs) {
        d.reg_name = decls[static_cast<std::size_t>(e.reg)].name;
      }
      d.step = e.step_index;
      d.fingerprint = fingerprint;
      d.message = e.message;
      add(std::move(d));
    }
    for (int r = 0; r < nregs; ++r) {
      const sim::Register& reg = sim.register_info(r);
      RegAgg& a = agg[static_cast<std::size_t>(r)];
      a.read_ever = a.read_ever || reg.reads > 0;
      a.max_bits = std::max(a.max_bits, reg.max_bits_written);
      a.max_writes = std::max(a.max_writes, reg.writes);
    }
    max_used = std::max(max_used, sim.max_bounded_bits_used());
    // Max steps any schedule made each process take — the observation the
    // step tier checks against its symbolic bounds (`--mode=steps`). The
    // artificial OpKind::Start step is a scheduler artifact, not one of the
    // paper's atomic shared-memory accesses, so it is excluded.
    for (int pid = 0; pid < sim.n(); ++pid) {
      auto& cell = steps_seen[static_cast<std::size_t>(pid)];
      cell = std::max(cell, std::max(0L, sim.steps(pid) - 1));
    }
  };

  const std::vector<bool> skip_width = prefilter_mask(spec, nregs);
  const auto make_sim = [&spec, &skip_width] {
    auto sim = spec.factory();
    sim->set_violation_collecting(true);
    for (std::size_t r = 0; r < skip_width.size(); ++r) {
      if (skip_width[r]) {
        sim->set_width_tracking(static_cast<int>(r), false);
      }
    }
    return sim;
  };

  if (spec.sample_runner) {
    for (int seed = 1; seed <= spec.sample_seeds; ++seed) {
      auto sim = make_sim();
      spec.sample_runner(*sim, static_cast<std::uint64_t>(seed));
      harvest(*sim, "seed:" + std::to_string(seed));
      ++rep.executions;
    }
  } else {
    const sim::Explorer explorer(spec.explore);
    rep.executions = explorer.explore(
        make_sim,
        [&](sim::Sim& sim, const std::vector<sim::Choice>& schedule) {
          harvest(sim, schedule_fingerprint(schedule));
        });
  }
  rep.max_bounded_bits_used = max_used;
  rep.observed_steps = std::move(steps_seen);

  // The audit table the cross-validator compares against the static tier's:
  // declarations from the probe Sim, usage from the exploration aggregate.
  for (int r = 0; r < nregs; ++r) {
    const sim::Register& reg = decls[static_cast<std::size_t>(r)];
    const RegAgg& a = agg[static_cast<std::size_t>(r)];
    RegisterAudit row;
    row.reg = r;
    row.name = reg.name;
    row.writer = reg.writer;
    row.declared_bits = reg.width_bits;
    row.write_once = reg.write_once;
    row.allows_bottom = reg.allows_bottom;
    row.max_bits = a.max_bits;
    row.max_writes = a.max_writes;
    row.read = a.read_ever;
    rep.registers.push_back(std::move(row));
  }

  // --- Aggregate layer: facts only visible across the whole exploration.
  for (int r = 0; r < nregs; ++r) {
    const sim::Register& reg = decls[static_cast<std::size_t>(r)];
    const RegAgg& a = agg[static_cast<std::size_t>(r)];
    if (reg.width_bits != sim::kUnbounded && budget > 0 &&
        a.max_bits > budget) {
      std::ostringstream msg;
      msg << "register '" << reg.name << "' was observed holding "
          << a.max_bits << "-bit values; the claim [" << spec.claim.source
          << "] budgets " << budget << " bits";
      Diagnostic d;
      d.rule = "claim-usage";
      d.pid = reg.writer;
      d.reg = r;
      d.reg_name = reg.name;
      d.message = msg.str();
      add(std::move(d));
    }
  }
  for (int r = 0; r < nregs; ++r) {
    const sim::Register& reg = decls[static_cast<std::size_t>(r)];
    const RegAgg& a = agg[static_cast<std::size_t>(r)];
    if (!a.read_ever) {
      Diagnostic d;
      d.rule = "dead-register";
      d.severity = Severity::Warning;
      d.pid = reg.writer;
      d.reg = r;
      d.reg_name = reg.name;
      d.message = "register '" + reg.name +
                  "' is never read on any explored schedule";
      add(std::move(d));
    }
    // Width actually needed by the observed values: at least one data bit,
    // plus the ⊥ code point when the register reserves one.
    const int plausible =
        std::max(1, a.max_bits) + (reg.allows_bottom ? 1 : 0);
    if (reg.width_bits != sim::kUnbounded && a.max_bits > 0 &&
        reg.width_bits > plausible) {
      std::ostringstream msg;
      msg << "register '" << reg.name << "' declares " << reg.width_bits
          << " bits but no explored execution needed more than " << plausible;
      Diagnostic d;
      d.rule = "width-unused";
      d.severity = Severity::Warning;
      d.pid = reg.writer;
      d.reg = r;
      d.reg_name = reg.name;
      d.message = msg.str();
      add(std::move(d));
    }
  }

  return rep;
}

}  // namespace bsr::analysis
